package model

import (
	"reflect"
	"testing"

	"compositetx/internal/order"
)

// buildStack constructs a well-formed 2-level stack execution:
//
//	S2 schedules roots T1, T2; their operations t11, t12, t21 are
//	transactions of S1; S1's operations are leaves.
//
//	T1 = {t11, t12},   T2 = {t21}
//	t11 = {a1}, t12 = {b1}, t21 = {a2}
//	CON_S1 = {(a1, a2)}, S1 executed a1 ≺ a2.
func buildStack(t testing.TB) *System {
	t.Helper()
	s := NewSystem()
	s.AddSchedule("S2")
	s1 := s.AddSchedule("S1")

	s.AddRoot("T1", "S2")
	s.AddRoot("T2", "S2")
	s.AddTx("t11", "T1", "S1")
	s.AddTx("t12", "T1", "S1")
	s.AddTx("t21", "T2", "S1")
	s.AddLeaf("a1", "t11")
	s.AddLeaf("b1", "t12")
	s.AddLeaf("a2", "t21")

	s1.AddConflict("a1", "a2")
	s1.WeakOut.Add("a1", "a2")

	s2 := s.Schedule("S2")
	s2.AddConflict("t11", "t21")
	s2.WeakOut.Add("t11", "t21")
	// Definition 4 item 7: S2's output order between ops sent to S1 becomes
	// S1's input order.
	s1.WeakIn.Add("t11", "t21")

	if err := s.Validate(); err != nil {
		t.Fatalf("fixture stack should validate: %v", err)
	}
	return s
}

// buildGeneral constructs a Figure-1-style general configuration:
// two roots in different top schedules, a shared bottom schedule, and
// subtrees of different heights.
//
//	SA (level 3) schedules TA;   TA invokes tm (SM, level 2) and leaf x.
//	SB (level 2) schedules TB;   TB invokes tb (SD, level 1).
//	tm invokes td (SD, level 1).
//	SD's operations are leaves: d1 (of td), d2 (of tb), conflicting.
func buildGeneral(t testing.TB) *System {
	t.Helper()
	s := NewSystem()
	s.AddSchedule("SA")
	s.AddSchedule("SB")
	s.AddSchedule("SM")
	sd := s.AddSchedule("SD")

	s.AddRoot("TA", "SA")
	s.AddRoot("TB", "SB")
	s.AddTx("tm", "TA", "SM")
	s.AddLeaf("x", "TA")
	s.AddTx("tb", "TB", "SD")
	s.AddTx("td", "tm", "SD")
	s.AddLeaf("d1", "td")
	s.AddLeaf("d2", "tb")

	sd.AddConflict("d1", "d2")
	sd.WeakOut.Add("d1", "d2")

	if err := s.Validate(); err != nil {
		t.Fatalf("fixture general should validate: %v", err)
	}
	return s
}

func TestRootsLeavesTransactions(t *testing.T) {
	s := buildStack(t)
	if got, want := s.Roots(), []NodeID{"T1", "T2"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Roots = %v, want %v", got, want)
	}
	if got, want := s.Leaves(), []NodeID{"a1", "a2", "b1"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Leaves = %v, want %v", got, want)
	}
	if got, want := s.Transactions("S1"), []NodeID{"t11", "t12", "t21"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Transactions(S1) = %v, want %v", got, want)
	}
	if got, want := s.Ops("S1"), []NodeID{"a1", "a2", "b1"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Ops(S1) = %v, want %v", got, want)
	}
	if got, want := s.Ops("S2"), []NodeID{"t11", "t12", "t21"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Ops(S2) = %v, want %v", got, want)
	}
}

func TestParentDefinition5(t *testing.T) {
	s := buildStack(t)
	if got := s.Parent("a1"); got != "t11" {
		t.Errorf("Parent(a1) = %s, want t11", got)
	}
	if got := s.Parent("t11"); got != "T1" {
		t.Errorf("Parent(t11) = %s, want T1", got)
	}
	// Definition 5: the parent of a root is the root itself.
	if got := s.Parent("T1"); got != "T1" {
		t.Errorf("Parent(T1) = %s, want T1 (roots are their own parent)", got)
	}
	if got := s.Parent("nope"); got != "" {
		t.Errorf("Parent of unknown node = %q, want empty", got)
	}
}

func TestOpSchedule(t *testing.T) {
	s := buildStack(t)
	if got := s.OpSchedule("a1"); got != "S1" {
		t.Errorf("OpSchedule(a1) = %s, want S1", got)
	}
	if got := s.OpSchedule("t11"); got != "S2" {
		t.Errorf("OpSchedule(t11) = %s, want S2", got)
	}
	if got := s.OpSchedule("T1"); got != "" {
		t.Errorf("OpSchedule(T1) = %s, want empty (roots are ops of no schedule)", got)
	}
}

func TestDescendantsAndCompositeTransaction(t *testing.T) {
	s := buildGeneral(t)
	if got, want := s.Descendants("TA"), []NodeID{"d1", "td", "tm", "x"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Descendants(TA) = %v, want %v", got, want)
	}
	if got, want := s.CompositeTransaction("TB"), []NodeID{"TB", "d2", "tb"}; !reflect.DeepEqual(got, want) {
		t.Errorf("CompositeTransaction(TB) = %v, want %v", got, want)
	}
}

func TestInvocationGraphAndLevels(t *testing.T) {
	s := buildGeneral(t)
	ig := s.InvocationGraph()
	for _, e := range [][2]ScheduleID{{"SA", "SM"}, {"SM", "SD"}, {"SB", "SD"}} {
		if !ig.Has(e[0], e[1]) {
			t.Errorf("IG missing edge %v", e)
		}
	}
	if ig.Has("SD", "SM") {
		t.Error("IG has a reversed edge")
	}
	levels, err := s.Levels()
	if err != nil {
		t.Fatal(err)
	}
	want := map[ScheduleID]int{"SD": 1, "SM": 2, "SB": 2, "SA": 3}
	if !reflect.DeepEqual(levels, want) {
		t.Errorf("Levels = %v, want %v", levels, want)
	}
	n, err := s.Order()
	if err != nil || n != 3 {
		t.Errorf("Order = %d, %v; want 3, nil", n, err)
	}
}

func TestLevelsRejectRecursion(t *testing.T) {
	s := NewSystem()
	s.AddSchedule("SA")
	s.AddSchedule("SB")
	s.AddRoot("T1", "SA")
	s.AddTx("t1", "T1", "SB") // SA invokes SB
	s.AddTx("t2", "t1", "SA") // SB invokes SA: recursion
	if _, err := s.Levels(); err == nil {
		t.Fatal("Levels should fail on a recursive configuration")
	}
	if err := s.Validate(); err == nil {
		t.Fatal("Validate should reject a recursive configuration")
	}
}

func TestValidateRejectsSelfInvocation(t *testing.T) {
	s := NewSystem()
	s.AddSchedule("S")
	s.AddRoot("T1", "S")
	s.AddTx("t1", "T1", "S") // operation of S that is a transaction of S
	if err := s.Validate(); err == nil {
		t.Fatal("Validate should reject self-invocation")
	}
}

func TestValidateRejectsMissingParent(t *testing.T) {
	s := NewSystem()
	s.AddSchedule("S")
	s.AddLeaf("a", "ghost")
	if err := s.Validate(); err == nil {
		t.Fatal("Validate should reject a dangling parent")
	}
}

func TestValidateRejectsLeafWithChildren(t *testing.T) {
	s := NewSystem()
	s.AddSchedule("S")
	s.AddRoot("T", "S")
	s.AddLeaf("a", "T")
	s.AddLeaf("b", "a") // child of a leaf
	if err := s.Validate(); err == nil {
		t.Fatal("Validate should reject operations under a leaf")
	}
}

func TestValidateRejectsUnorderedConflicts(t *testing.T) {
	s := NewSystem()
	sc := s.AddSchedule("S")
	s.AddRoot("T1", "S")
	s.AddRoot("T2", "S")
	s.AddLeaf("a", "T1")
	s.AddLeaf("b", "T2")
	sc.AddConflict("a", "b")
	// No weak output order between a and b: violates Def 3.1c.
	if err := s.Validate(); err == nil {
		t.Fatal("Validate should require conflicting operations to be ordered")
	}
	sc.WeakOut.Add("a", "b")
	if err := s.Validate(); err != nil {
		t.Fatalf("ordered conflict should validate: %v", err)
	}
}

func TestValidateWeakInputForcesOutputDirection(t *testing.T) {
	s := NewSystem()
	sc := s.AddSchedule("S")
	s.AddRoot("T1", "S")
	s.AddRoot("T2", "S")
	s.AddLeaf("a", "T1")
	s.AddLeaf("b", "T2")
	sc.AddConflict("a", "b")
	sc.WeakIn.Add("T1", "T2")
	sc.WeakOut.Add("b", "a") // wrong direction
	if err := s.Validate(); err == nil {
		t.Fatal("Validate should reject output order contradicting weak input order (Def 3.1a)")
	}
	sc.WeakOut = order.FromPairs([2]NodeID{"a", "b"})
	if err := s.Validate(); err != nil {
		t.Fatalf("correct direction should validate: %v", err)
	}
}

func TestValidateStrongInputForcesStrongOutput(t *testing.T) {
	s := NewSystem()
	sc := s.AddSchedule("S")
	s.AddRoot("T1", "S")
	s.AddRoot("T2", "S")
	s.AddLeaf("a", "T1")
	s.AddLeaf("b", "T2")
	sc.StrongIn.Add("T1", "T2")
	sc.WeakIn.Add("T1", "T2")
	if err := s.Validate(); err == nil {
		t.Fatal("Validate should require a≪b when T1⇒T2 (Def 3.3)")
	}
	sc.StrongOut.Add("a", "b")
	if err := s.Validate(); err != nil {
		t.Fatalf("system with strong output order should validate: %v", err)
	}
}

func TestValidateIntraOrderRespected(t *testing.T) {
	s := NewSystem()
	sc := s.AddSchedule("S")
	s.AddRoot("T1", "S")
	s.AddLeaf("a", "T1")
	s.AddLeaf("b", "T1")
	s.Node("T1").WeakIntra = order.FromPairs([2]NodeID{"a", "b"})
	if err := s.Validate(); err == nil {
		t.Fatal("Validate should require the schedule to respect intra orders (Def 3.2)")
	}
	sc.WeakOut.Add("a", "b")
	if err := s.Validate(); err != nil {
		t.Fatalf("respected intra order should validate: %v", err)
	}
}

func TestValidateDef47Propagation(t *testing.T) {
	s := buildStack(t)
	// Break the propagation: remove S1's weak input order pair.
	s.Schedule("S1").WeakIn = order.New[NodeID]()
	if err := s.Validate(); err == nil {
		t.Fatal("Validate should require output orders to be passed down (Def 4.7)")
	}
}

func TestValidateCyclicOutputOrder(t *testing.T) {
	s := NewSystem()
	sc := s.AddSchedule("S")
	s.AddRoot("T1", "S")
	s.AddRoot("T2", "S")
	s.AddLeaf("a", "T1")
	s.AddLeaf("b", "T2")
	sc.WeakOut.Add("a", "b")
	sc.WeakOut.Add("b", "a")
	if err := s.Validate(); err == nil {
		t.Fatal("Validate should reject a cyclic weak output order")
	}
}

func TestNormalizeClosesAndFolds(t *testing.T) {
	s := NewSystem()
	sc := s.AddSchedule("S")
	s.AddRoot("T1", "S")
	s.AddRoot("T2", "S")
	s.AddRoot("T3", "S")
	s.AddLeaf("a", "T1")
	s.AddLeaf("b", "T2")
	s.AddLeaf("c", "T3")
	sc.WeakOut.Add("a", "b")
	sc.WeakOut.Add("b", "c")
	sc.StrongOut.Add("c", "c2")
	s.AddLeaf("c2", "T3")
	s.Normalize()
	if !sc.WeakOut.Has("a", "c") {
		t.Error("Normalize should transitively close the weak output order")
	}
	if !sc.WeakOut.Has("c", "c2") {
		t.Error("Normalize should fold strong output pairs into the weak order (≪ ⊆ ≺)")
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := buildStack(t)
	c := s.Clone()
	c.Schedule("S1").WeakOut.Add("b1", "a1")
	if s.Schedule("S1").WeakOut.Has("b1", "a1") {
		t.Fatal("Clone shares schedule relations with the original")
	}
	c.Node("T1").WeakIntra = order.FromPairs([2]NodeID{"t11", "t12"})
	if s.Node("T1").WeakIntra != nil {
		t.Fatal("Clone shares node state with the original")
	}
}

func TestLeafAndInternalSchedules(t *testing.T) {
	s := buildGeneral(t)
	levels, err := s.Levels()
	if err != nil {
		t.Fatal(err)
	}
	// A leaf schedule (level 1) has only leaf operations.
	for _, op := range s.Ops("SD") {
		if !s.Node(op).IsLeaf() {
			t.Errorf("SD (level %d) has non-leaf op %s", levels["SD"], op)
		}
	}
	// SA is internal and also has a leaf operation x (allowed by Def 4.2).
	var hasLeaf, hasTx bool
	for _, op := range s.Ops("SA") {
		if s.Node(op).IsLeaf() {
			hasLeaf = true
		} else {
			hasTx = true
		}
	}
	if !hasLeaf || !hasTx {
		t.Error("SA should have both a leaf op and a transaction op")
	}
}
