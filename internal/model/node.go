// Package model implements the composite-system model of the paper
// (Definitions 1–9): transactions with weak and strong intra-transaction
// orders, schedules with input and output orders and a conflict predicate,
// and composite systems — sets of schedules whose transactions' operations
// may themselves be transactions of other schedules, forming a
// computational forest over an acyclic invocation graph.
//
// The package is purely structural: it records an execution (or a schedule
// requirement) and validates the model's axioms. Deciding correctness is
// the job of internal/front.
package model

import (
	"fmt"

	"compositetx/internal/order"
)

// NodeID identifies a node of the computational forest: a root transaction,
// an internal (sub)transaction, or a leaf operation. IDs are unique across
// the whole composite system.
type NodeID string

// ScheduleID identifies a schedule (a scheduler component) of the composite
// system.
type ScheduleID string

// Node is one node of the computational forest.
//
// A node with Sched != "" is a transaction: it belongs to the transaction
// set T_S of that schedule (Definition 4 item 1 — every transaction is
// assigned to exactly one schedule). A node with Sched == "" is a leaf
// operation (Definition 4 item 3).
//
// A node with Parent != "" is an operation of its parent transaction and
// hence an operation of the parent's schedule; a node with Parent == "" is
// a root transaction (Definition 4 item 5).
type Node struct {
	ID     NodeID
	Parent NodeID     // "" for root transactions
	Sched  ScheduleID // home schedule for transactions; "" for leaves

	// WeakIntra and StrongIntra are the transaction's own orders over its
	// operations (Definition 2: ≺t and ≪t, with ≪t ⊆ ≺t). They express,
	// respectively, required data-flow direction and strict temporal order.
	// Nil means empty. Always nil for leaves.
	WeakIntra   *order.Relation[NodeID]
	StrongIntra *order.Relation[NodeID]
}

// IsLeaf reports whether the node is a leaf operation.
func (n *Node) IsLeaf() bool { return n.Sched == "" }

// IsRoot reports whether the node is a root transaction.
func (n *Node) IsRoot() bool { return n.Parent == "" }

// Schedule models one scheduler component (Definition 3). It records the
// scheduler's dynamic result: which transactions it received, with which
// input orders, and in which output order it executed their operations.
type Schedule struct {
	ID ScheduleID

	// Conflicts is CON_S, the schedule's conflict predicate over its
	// operations: two operations conflict iff they do not commute. The
	// predicate is symmetric and irreflexive.
	Conflicts *PairSet

	// WeakIn (→) and StrongIn (⇒) are the input orders over the schedule's
	// transactions, with ⇒ ⊆ → (Definition 3). They carry the ordering
	// requirements imposed by the callers (Definition 4 item 7).
	WeakIn   *order.Relation[NodeID]
	StrongIn *order.Relation[NodeID]

	// WeakOut (≺) and StrongOut (≪) are the output orders over the
	// schedule's operations, with ≪ ⊆ ≺: the order the scheduler actually
	// produced. For conflicting operations the weak output order decides
	// the serialization; for non-conflicting ones it is irrelevant and may
	// be omitted.
	WeakOut   *order.Relation[NodeID]
	StrongOut *order.Relation[NodeID]
}

func newSchedule(id ScheduleID) *Schedule {
	return &Schedule{
		ID:        id,
		Conflicts: NewPairSet(),
		WeakIn:    order.New[NodeID](),
		StrongIn:  order.New[NodeID](),
		WeakOut:   order.New[NodeID](),
		StrongOut: order.New[NodeID](),
	}
}

// AddConflict declares that operations a and b do not commute.
func (s *Schedule) AddConflict(a, b NodeID) { s.Conflicts.Add(a, b) }

// Conflict reports whether a and b conflict under CON_S.
func (s *Schedule) Conflict(a, b NodeID) bool { return s.Conflicts.Has(a, b) }

func (s *Schedule) String() string { return fmt.Sprintf("schedule %s", s.ID) }
