package model

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"compositetx/internal/order"
)

func TestJSONRoundTrip(t *testing.T) {
	s := buildGeneral(t)
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped system should validate: %v", err)
	}
	if got, want := back.NumNodes(), s.NumNodes(); got != want {
		t.Fatalf("NumNodes = %d, want %d", got, want)
	}
	if !back.Schedule("SD").Conflict("d1", "d2") {
		t.Fatal("conflict lost in round trip")
	}
	if !back.Schedule("SD").WeakOut.Has("d1", "d2") {
		t.Fatal("weak output order lost in round trip")
	}
	if back.Node("tm") == nil || back.Node("tm").Sched != "SM" {
		t.Fatal("node tm lost or corrupted in round trip")
	}
}

func TestJSONRoundTripIntraOrders(t *testing.T) {
	s := NewSystem()
	sc := s.AddSchedule("S")
	s.AddRoot("T", "S")
	s.AddLeaf("a", "T")
	s.AddLeaf("b", "T")
	s.Node("T").WeakIntra = order.FromPairs([2]NodeID{"a", "b"})
	sc.WeakOut.Add("a", "b")
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Node("T").WeakIntra == nil || !back.Node("T").WeakIntra.Has("a", "b") {
		t.Fatal("intra order lost in round trip")
	}
}

func TestDecodeRejectsDuplicates(t *testing.T) {
	in := `{"schedules":[{"id":"S"},{"id":"S"}],"nodes":[]}`
	if _, err := Decode(strings.NewReader(in)); err == nil {
		t.Fatal("duplicate schedule should fail to decode")
	}
	in = `{"schedules":[{"id":"S"}],"nodes":[{"id":"T","schedule":"S"},{"id":"T","schedule":"S"}]}`
	if _, err := Decode(strings.NewReader(in)); err == nil {
		t.Fatal("duplicate node should fail to decode")
	}
}

func TestDecodeRejectsOrphanNode(t *testing.T) {
	in := `{"schedules":[{"id":"S"}],"nodes":[{"id":"X"}]}`
	if _, err := Decode(strings.NewReader(in)); err == nil {
		t.Fatal("node without schedule and parent should fail to decode")
	}
}

func TestDecodeRejectsMalformedJSON(t *testing.T) {
	if _, err := Decode(strings.NewReader("{nope")); err == nil {
		t.Fatal("malformed JSON should fail")
	}
}

func TestMarshalIsValidJSON(t *testing.T) {
	s := buildStack(t)
	data, err := s.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(data) {
		t.Fatal("MarshalJSON produced invalid JSON")
	}
}

func TestDOTOutput(t *testing.T) {
	s := buildGeneral(t)
	var buf bytes.Buffer
	if err := s.DOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph composite", "cluster_", `label="SD"`, `"TA" [shape=doubleoctagon]`,
		`"d1" -> "d2" [color=red`, `"tm" -> "td"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Balanced braces (cheap well-formedness check).
	if strings.Count(out, "{") != strings.Count(out, "}") {
		t.Fatal("unbalanced braces in DOT output")
	}
}
