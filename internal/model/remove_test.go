package model

import (
	"strings"
	"testing"
)

func TestRemoveTree(t *testing.T) {
	s := buildGeneral(t)
	before := s.NumNodes()
	s.RemoveTree("TA") // TA, tm, td, d1, x
	if got := s.NumNodes(); got != before-5 {
		t.Fatalf("NumNodes = %d, want %d", got, before-5)
	}
	for _, id := range []NodeID{"TA", "tm", "td", "d1", "x"} {
		if s.Node(id) != nil {
			t.Errorf("node %s survived RemoveTree", id)
		}
	}
	if s.Schedule("SD").Conflict("d1", "d2") {
		t.Error("conflict involving removed node survived")
	}
	if s.Schedule("SD").WeakOut.Has("d1", "d2") {
		t.Error("weak output pair involving removed node survived")
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("pruned system must validate: %v", err)
	}
}

func TestRemoveTreeSubtransaction(t *testing.T) {
	s := buildGeneral(t)
	s.RemoveTree("tm") // removes tm, td, d1; TA keeps x
	if s.Node("tm") != nil || s.Node("d1") != nil {
		t.Fatal("subtree not removed")
	}
	if s.Node("TA") == nil || s.Node("x") == nil {
		t.Fatal("RemoveTree removed too much")
	}
	if got := s.Children("TA"); len(got) != 1 || got[0] != "x" {
		t.Fatalf("Children(TA) = %v, want [x]", got)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveTreeUnknownIsNoop(t *testing.T) {
	s := buildStack(t)
	before := s.NumNodes()
	s.RemoveTree("nope")
	if s.NumNodes() != before {
		t.Fatal("RemoveTree of unknown node changed the system")
	}
}

func TestPairSetRemove(t *testing.T) {
	p := NewPairSet()
	p.Add("a", "b")
	p.Remove("b", "a") // unordered
	if p.Len() != 0 {
		t.Fatal("Remove failed")
	}
}

func TestScheduleString(t *testing.T) {
	s := buildStack(t)
	if got := s.Schedule("S1").String(); !strings.Contains(got, "S1") {
		t.Fatalf("String = %q", got)
	}
}

func TestBuilderPanics(t *testing.T) {
	cases := map[string]func(){
		"dup schedule":   func() { s := NewSystem(); s.AddSchedule("S"); s.AddSchedule("S") },
		"dup node":       func() { s := NewSystem(); s.AddSchedule("S"); s.AddRoot("T", "S"); s.AddRoot("T", "S") },
		"empty node id":  func() { s := NewSystem(); s.AddSchedule("S"); s.AddRoot("", "S") },
		"tx no sched":    func() { s := NewSystem(); s.AddSchedule("S"); s.AddRoot("T", "S"); s.AddTx("t", "T", "") },
		"tx no parent":   func() { s := NewSystem(); s.AddSchedule("S"); s.AddTx("t", "", "S") },
		"leaf no parent": func() { s := NewSystem(); s.AddSchedule("S"); s.AddLeaf("a", "") },
	}
	for name, fn := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}
