package model

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestPairSetSymmetric(t *testing.T) {
	p := NewPairSet()
	p.Add("a", "b")
	if !p.Has("a", "b") || !p.Has("b", "a") {
		t.Fatal("pair set must be symmetric")
	}
	if p.Len() != 1 {
		t.Fatalf("Len = %d, want 1", p.Len())
	}
	p.Add("b", "a") // same pair
	if p.Len() != 1 {
		t.Fatalf("Len after mirrored Add = %d, want 1", p.Len())
	}
}

func TestPairSetIrreflexive(t *testing.T) {
	p := NewPairSet()
	p.Add("a", "a")
	if p.Len() != 0 || p.Has("a", "a") {
		t.Fatal("reflexive pairs must be ignored")
	}
}

func TestPairSetRemoveInvolving(t *testing.T) {
	p := NewPairSet()
	p.Add("a", "b")
	p.Add("b", "c")
	p.Add("c", "d")
	p.RemoveInvolving("b")
	if p.Has("a", "b") || p.Has("b", "c") {
		t.Fatal("pairs involving b survived")
	}
	if !p.Has("c", "d") {
		t.Fatal("unrelated pair was removed")
	}
}

func TestPairSetPairsCanonicalOrder(t *testing.T) {
	p := NewPairSet()
	p.Add("z", "a")
	p.Add("m", "b")
	want := [][2]NodeID{{"a", "z"}, {"b", "m"}}
	if got := p.Pairs(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Pairs = %v, want %v", got, want)
	}
}

func TestPairSetInvolving(t *testing.T) {
	p := NewPairSet()
	p.Add("a", "b")
	p.Add("c", "a")
	p.Add("b", "c")
	if got, want := p.Involving("a"), []NodeID{"b", "c"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Involving(a) = %v, want %v", got, want)
	}
	if got := p.Involving("x"); got != nil {
		t.Fatalf("Involving(x) = %v, want nil", got)
	}
}

func TestPairSetCloneUnion(t *testing.T) {
	p := NewPairSet()
	p.Add("a", "b")
	c := p.Clone()
	c.Add("c", "d")
	if p.Has("c", "d") {
		t.Fatal("Clone is not independent")
	}
	p.Union(c)
	if !p.Has("c", "d") {
		t.Fatal("Union did not add pairs")
	}
}

// Property: Has is symmetric for arbitrary inserts.
func TestPairSetSymmetryProperty(t *testing.T) {
	f := func(a, b string) bool {
		p := NewPairSet()
		p.Add(NodeID(a), NodeID(b))
		return p.Has(NodeID(a), NodeID(b)) == p.Has(NodeID(b), NodeID(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
