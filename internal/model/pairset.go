package model

import "sort"

// PairSet is a set of unordered, irreflexive pairs of node IDs. It stores
// the symmetric conflict predicate CON_S of a schedule: Add(a,b) and
// Add(b,a) are the same pair, and Add(a,a) is ignored (an operation cannot
// conflict with itself in the model; self-conflicts would make every
// execution incorrect).
type PairSet struct {
	m map[[2]NodeID]struct{}
}

// NewPairSet returns an empty set.
func NewPairSet() *PairSet {
	return &PairSet{m: make(map[[2]NodeID]struct{})}
}

func canonical(a, b NodeID) [2]NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]NodeID{a, b}
}

// Add inserts the unordered pair {a, b}. Reflexive pairs are ignored.
func (p *PairSet) Add(a, b NodeID) {
	if a == b {
		return
	}
	p.m[canonical(a, b)] = struct{}{}
}

// Has reports whether {a, b} is in the set. Has(a, a) is always false.
func (p *PairSet) Has(a, b NodeID) bool {
	if a == b {
		return false
	}
	_, ok := p.m[canonical(a, b)]
	return ok
}

// Remove deletes the unordered pair {a, b}.
func (p *PairSet) Remove(a, b NodeID) {
	delete(p.m, canonical(a, b))
}

// RemoveInvolving deletes every pair with n as an endpoint.
func (p *PairSet) RemoveInvolving(n NodeID) {
	for k := range p.m {
		if k[0] == n || k[1] == n {
			delete(p.m, k)
		}
	}
}

// RemoveInvolvingSet deletes every pair with an endpoint in set — one
// sweep over the pairs regardless of the set's size (RemoveInvolving
// per node would sweep once per node).
func (p *PairSet) RemoveInvolvingSet(set map[NodeID]struct{}) {
	for k := range p.m {
		if _, ok := set[k[0]]; ok {
			delete(p.m, k)
			continue
		}
		if _, ok := set[k[1]]; ok {
			delete(p.m, k)
		}
	}
}

// Len returns the number of pairs.
func (p *PairSet) Len() int { return len(p.m) }

// Pairs returns all pairs in canonical (lexicographic) order.
func (p *PairSet) Pairs() [][2]NodeID {
	out := make([][2]NodeID, 0, len(p.m))
	for k := range p.m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Each calls fn for every pair (in canonical orientation, unspecified
// order). Mutation during iteration is not allowed.
func (p *PairSet) Each(fn func(a, b NodeID)) {
	for k := range p.m {
		fn(k[0], k[1])
	}
}

// Clone returns a deep copy.
func (p *PairSet) Clone() *PairSet {
	c := NewPairSet()
	for k := range p.m {
		c.m[k] = struct{}{}
	}
	return c
}

// Union adds every pair of other into p and returns p.
func (p *PairSet) Union(other *PairSet) *PairSet {
	if other == nil {
		return p
	}
	for k := range other.m {
		p.m[k] = struct{}{}
	}
	return p
}

// Involving returns the partners of n, sorted.
func (p *PairSet) Involving(n NodeID) []NodeID {
	var out []NodeID
	for k := range p.m {
		switch n {
		case k[0]:
			out = append(out, k[1])
		case k[1]:
			out = append(out, k[0])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
