package model

import (
	"fmt"
	"io"
	"strings"
)

// DOT renders the composite system in Graphviz format: one cluster per
// schedule containing its transactions, leaf operations as plain boxes,
// the computational forest as solid edges, and each schedule's weak output
// order on conflicting operation pairs as red arrows. Pipe through `dot
// -Tsvg` to visualize an execution (cmd/compcheck -dot).
func (s *System) DOT(w io.Writer) error {
	var b strings.Builder
	b.WriteString("digraph composite {\n")
	b.WriteString("  rankdir=TB;\n  node [fontname=\"Helvetica\", fontsize=10];\n")

	quote := func(id NodeID) string { return fmt.Sprintf("%q", string(id)) }

	// Clusters: transactions grouped by their home schedule.
	for i, sc := range s.Schedules() {
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n", i)
		fmt.Fprintf(&b, "    label=%q; style=rounded; color=gray60;\n", string(sc.ID))
		for _, t := range s.Transactions(sc.ID) {
			shape := "ellipse"
			if s.Node(t).IsRoot() {
				shape = "doubleoctagon"
			}
			fmt.Fprintf(&b, "    %s [shape=%s];\n", quote(t), shape)
		}
		b.WriteString("  }\n")
	}
	// Leaves.
	for _, l := range s.Leaves() {
		fmt.Fprintf(&b, "  %s [shape=box, style=filled, fillcolor=gray92];\n", quote(l))
	}
	// Forest edges.
	for _, id := range s.NodeIDs() {
		for _, k := range s.Children(id) {
			fmt.Fprintf(&b, "  %s -> %s [color=gray50, arrowsize=0.6];\n", quote(id), quote(k))
		}
	}
	// Conflicting weak output orders, per schedule.
	for _, sc := range s.Schedules() {
		sc.Conflicts.Each(func(x, y NodeID) {
			switch {
			case sc.WeakOut.Has(x, y):
				fmt.Fprintf(&b, "  %s -> %s [color=red, constraint=false, label=\"≺\", fontcolor=red];\n", quote(x), quote(y))
			case sc.WeakOut.Has(y, x):
				fmt.Fprintf(&b, "  %s -> %s [color=red, constraint=false, label=\"≺\", fontcolor=red];\n", quote(y), quote(x))
			default:
				fmt.Fprintf(&b, "  %s -> %s [color=red, style=dashed, dir=none, constraint=false];\n", quote(x), quote(y))
			}
		})
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
