package model

import (
	"fmt"
	"sort"

	"compositetx/internal/order"
)

// System is a composite system (Definition 4): a set of schedules plus the
// computational forest of the execution they jointly produced.
//
// Build a System with AddSchedule / AddRoot / AddTx / AddLeaf, fill in the
// schedules' orders and conflicts, then call Validate. All query methods
// assume a structurally sound forest (parents exist, no parent cycles);
// Validate reports violations of the remaining model axioms.
type System struct {
	schedules map[ScheduleID]*Schedule
	nodes     map[NodeID]*Node
	children  map[NodeID][]NodeID // insertion order; sorted on demand

	// interner caches the NodeID ↔ int32 index of Intern; nil until built,
	// reset by any node-set mutation.
	interner *Interner
}

// NewSystem returns an empty composite system.
func NewSystem() *System {
	return &System{
		schedules: make(map[ScheduleID]*Schedule),
		nodes:     make(map[NodeID]*Node),
		children:  make(map[NodeID][]NodeID),
	}
}

// AddSchedule registers a new schedule. It panics if the ID is taken:
// construction mistakes are programming errors, not runtime conditions.
func (s *System) AddSchedule(id ScheduleID) *Schedule {
	if _, dup := s.schedules[id]; dup {
		panic(fmt.Sprintf("model: duplicate schedule %q", id))
	}
	sc := newSchedule(id)
	s.schedules[id] = sc
	return sc
}

// AddRoot adds a root transaction scheduled by sched.
func (s *System) AddRoot(id NodeID, sched ScheduleID) *Node {
	return s.addNode(id, "", sched)
}

// AddTx adds a (sub)transaction: an operation of parent that is itself a
// transaction of sched.
func (s *System) AddTx(id NodeID, parent NodeID, sched ScheduleID) *Node {
	if sched == "" {
		panic(fmt.Sprintf("model: transaction %q needs a schedule", id))
	}
	if parent == "" {
		panic(fmt.Sprintf("model: transaction %q needs a parent; use AddRoot for roots", id))
	}
	return s.addNode(id, parent, sched)
}

// AddLeaf adds a leaf operation as a child of parent.
func (s *System) AddLeaf(id NodeID, parent NodeID) *Node {
	if parent == "" {
		panic(fmt.Sprintf("model: leaf %q needs a parent", id))
	}
	return s.addNode(id, parent, "")
}

func (s *System) addNode(id NodeID, parent NodeID, sched ScheduleID) *Node {
	if id == "" {
		panic("model: empty node ID")
	}
	if _, dup := s.nodes[id]; dup {
		panic(fmt.Sprintf("model: duplicate node %q", id))
	}
	n := &Node{ID: id, Parent: parent, Sched: sched}
	s.nodes[id] = n
	s.interner = nil
	if parent != "" {
		s.children[parent] = append(s.children[parent], id)
	}
	return n
}

// Node returns the node with the given ID, or nil.
func (s *System) Node(id NodeID) *Node { return s.nodes[id] }

// Schedule returns the schedule with the given ID, or nil.
func (s *System) Schedule(id ScheduleID) *Schedule { return s.schedules[id] }

// Schedules returns all schedules sorted by ID.
func (s *System) Schedules() []*Schedule {
	ids := make([]ScheduleID, 0, len(s.schedules))
	for id := range s.schedules {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]*Schedule, len(ids))
	for i, id := range ids {
		out[i] = s.schedules[id]
	}
	return out
}

// NumNodes returns the number of forest nodes.
func (s *System) NumNodes() int { return len(s.nodes) }

// NodeIDs returns all node IDs, sorted.
func (s *System) NodeIDs() []NodeID {
	out := make([]NodeID, 0, len(s.nodes))
	for id := range s.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Children returns the operations of a transaction (O_t), sorted by ID.
func (s *System) Children(id NodeID) []NodeID {
	kids := append([]NodeID(nil), s.children[id]...)
	sort.Slice(kids, func(i, j int) bool { return kids[i] < kids[j] })
	return kids
}

// Roots returns all root transactions, sorted (the set R of Definition 4).
func (s *System) Roots() []NodeID {
	var out []NodeID
	for id, n := range s.nodes {
		if n.IsRoot() {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Leaves returns all leaf operations, sorted (the set L of Definition 4).
func (s *System) Leaves() []NodeID {
	var out []NodeID
	for id, n := range s.nodes {
		if n.IsLeaf() {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Parent implements Definition 5: the parent of a non-root node, and the
// node itself for root transactions.
func (s *System) Parent(id NodeID) NodeID {
	n := s.nodes[id]
	if n == nil {
		return ""
	}
	if n.Parent == "" {
		return id
	}
	return n.Parent
}

// OpSchedule returns the schedule that has the node as one of its
// operations: the home schedule of the node's parent. Root transactions are
// operations of no schedule and yield "".
func (s *System) OpSchedule(id NodeID) ScheduleID {
	n := s.nodes[id]
	if n == nil || n.Parent == "" {
		return ""
	}
	p := s.nodes[n.Parent]
	if p == nil {
		return ""
	}
	return p.Sched
}

// Transactions returns T_S: the transactions assigned to the schedule,
// sorted by ID.
func (s *System) Transactions(sched ScheduleID) []NodeID {
	var out []NodeID
	for id, n := range s.nodes {
		if n.Sched == sched {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Ops returns O_S: the union of the operations of the schedule's
// transactions, sorted by ID.
func (s *System) Ops(sched ScheduleID) []NodeID {
	var out []NodeID
	for _, t := range s.Transactions(sched) {
		out = append(out, s.children[t]...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Descendants returns Act(T): the transitive closure of the operations of
// the node, sorted (the node itself excluded).
func (s *System) Descendants(id NodeID) []NodeID {
	var out []NodeID
	stack := append([]NodeID(nil), s.children[id]...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, n)
		stack = append(stack, s.children[n]...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CompositeTransaction returns the composite transaction (execution tree,
// Definition 6) rooted at the given root: the root and all its descendants.
func (s *System) CompositeTransaction(root NodeID) []NodeID {
	out := append([]NodeID{root}, s.Descendants(root)...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// InvocationGraph returns the IG of Definition 8: an edge S_i -> S_j
// whenever some operation of S_i is a transaction of S_j.
func (s *System) InvocationGraph() *order.Relation[ScheduleID] {
	ig := order.New[ScheduleID]()
	for id := range s.schedules {
		ig.AddNode(id)
	}
	for _, n := range s.nodes {
		if n.Sched == "" || n.Parent == "" {
			continue
		}
		caller := s.OpSchedule(n.ID)
		if caller != "" && caller != n.Sched {
			ig.Add(caller, n.Sched)
		} else if caller == n.Sched {
			// Self-invocation: recorded so validation can reject it.
			ig.Add(caller, n.Sched)
		}
	}
	return ig
}

// Levels computes the level of every schedule (Definition 9: one plus the
// length of the longest IG path starting at the schedule). It fails if the
// invocation graph is cyclic, i.e. the configuration is recursive, which
// Definition 4 item 6 forbids.
func (s *System) Levels() (map[ScheduleID]int, error) {
	ig := s.InvocationGraph()
	sorted, ok := ig.TopoSort()
	if !ok {
		return nil, fmt.Errorf("model: invocation graph is cyclic (recursive configuration): %v", ig.FindCycle())
	}
	levels := make(map[ScheduleID]int, len(sorted))
	// Longest path from each node: process in reverse topological order.
	for i := len(sorted) - 1; i >= 0; i-- {
		sc := sorted[i]
		longest := 0
		for _, succ := range ig.Successors(sc) {
			if l := levels[succ]; l > longest {
				longest = l
			}
		}
		levels[sc] = longest + 1
	}
	return levels, nil
}

// Order returns N, the highest schedule level in the system (Definition 9),
// or an error for recursive configurations.
func (s *System) Order() (int, error) {
	levels, err := s.Levels()
	if err != nil {
		return 0, err
	}
	n := 0
	for _, l := range levels {
		if l > n {
			n = l
		}
	}
	return n, nil
}

// Normalize transitively closes every stored order relation: the paper's
// orders are "in all cases, transitively closed" (Definition 1), but
// builders and recorders typically supply generating pairs only. Validate
// and the reduction both call Normalize-like closures internally; calling
// it explicitly makes the stored system canonical. Normalize also builds
// (and caches) the node interner, so a normalized system is ready for the
// interned-index checker without further allocation.
func (s *System) Normalize() {
	s.Intern()
	for _, sc := range s.schedules {
		sc.WeakIn = sc.WeakIn.TransitiveClosure()
		sc.StrongIn = sc.StrongIn.TransitiveClosure()
		sc.WeakOut = sc.WeakOut.TransitiveClosure()
		sc.StrongOut = sc.StrongOut.TransitiveClosure()
		// Definition 3: ≪ ⊆ ≺ and ⇒ ⊆ →. Builders often record a pair only
		// in the strong relation; fold it into the weak one.
		sc.WeakIn.Union(sc.StrongIn)
		sc.WeakOut.Union(sc.StrongOut)
		sc.WeakIn = sc.WeakIn.TransitiveClosure()
		sc.WeakOut = sc.WeakOut.TransitiveClosure()
	}
	for _, n := range s.nodes {
		if n.StrongIntra != nil {
			n.StrongIntra = n.StrongIntra.TransitiveClosure()
		}
		if n.WeakIntra != nil {
			if n.StrongIntra != nil {
				n.WeakIntra.Union(n.StrongIntra)
			}
			n.WeakIntra = n.WeakIntra.TransitiveClosure()
		} else if n.StrongIntra != nil {
			n.WeakIntra = n.StrongIntra.Clone()
		}
	}
}

// RemoveTree deletes the node and its entire subtree from the forest,
// together with every order pair and conflict involving the removed nodes.
// Removing a whole composite transaction from a well-formed execution
// leaves a well-formed execution (it only removes constraints), which the
// property tests use: pruning a correct execution keeps it correct.
func (s *System) RemoveTree(root NodeID) {
	s.RemoveTrees([]NodeID{root})
}

// RemoveTrees deletes several subtrees at once. It is equivalent to
// RemoveTree per root but sweeps each relation and conflict set a single
// time for the whole batch — the checkpoint fold removes every committed
// root together, and per-root sweeps would make the fold quadratic.
func (s *System) RemoveTrees(roots []NodeID) {
	set := make(map[NodeID]struct{})
	for _, root := range roots {
		n := s.nodes[root]
		if n == nil {
			continue
		}
		set[root] = struct{}{}
		for _, id := range s.Descendants(root) {
			set[id] = struct{}{}
		}
		if n.Parent != "" {
			kids := s.children[n.Parent]
			kept := kids[:0]
			for _, k := range kids {
				if k != root {
					kept = append(kept, k)
				}
			}
			s.children[n.Parent] = kept
		}
	}
	if len(set) == 0 {
		return
	}
	for id := range set {
		delete(s.nodes, id)
		delete(s.children, id)
	}
	s.interner = nil
	for _, sc := range s.schedules {
		sc.Conflicts.RemoveInvolvingSet(set)
		sc.WeakIn.RemoveNodes(set)
		sc.StrongIn.RemoveNodes(set)
		sc.WeakOut.RemoveNodes(set)
		sc.StrongOut.RemoveNodes(set)
	}
}

// Clone returns a deep copy of the system.
func (s *System) Clone() *System {
	c := NewSystem()
	for id, n := range s.nodes {
		cn := &Node{ID: n.ID, Parent: n.Parent, Sched: n.Sched}
		if n.WeakIntra != nil {
			cn.WeakIntra = n.WeakIntra.Clone()
		}
		if n.StrongIntra != nil {
			cn.StrongIntra = n.StrongIntra.Clone()
		}
		c.nodes[id] = cn
	}
	for id, kids := range s.children {
		c.children[id] = append([]NodeID(nil), kids...)
	}
	for id, sc := range s.schedules {
		c.schedules[id] = &Schedule{
			ID:        sc.ID,
			Conflicts: sc.Conflicts.Clone(),
			WeakIn:    sc.WeakIn.Clone(),
			StrongIn:  sc.StrongIn.Clone(),
			WeakOut:   sc.WeakOut.Clone(),
			StrongOut: sc.StrongOut.Clone(),
		}
	}
	return c
}
