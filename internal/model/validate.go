package model

import (
	"errors"
	"fmt"
)

// ValidateStructure checks the structural soundness of the computational
// forest and the invocation graph: parents exist and are transactions,
// parent chains terminate, intra orders live on transactions, schedules
// exist, and the configuration is recursion-free (Definition 4 item 6).
// The reduction (internal/front) requires exactly these properties; the
// order-theoretic axioms of Definition 3 are checked by Validate on top.
func (s *System) ValidateStructure() error {
	var errs []error
	add := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	for _, id := range s.NodeIDs() {
		n := s.nodes[id]
		if n.Parent != "" {
			p := s.nodes[n.Parent]
			switch {
			case p == nil:
				add("node %s: parent %s does not exist", id, n.Parent)
				continue
			case p.IsLeaf():
				add("node %s: parent %s is a leaf; only transactions have operations", id, n.Parent)
			}
		}
		if n.Sched != "" {
			if s.schedules[n.Sched] == nil {
				add("transaction %s: schedule %s does not exist", id, n.Sched)
			}
		} else if len(s.children[id]) > 0 {
			add("leaf %s has children %v", id, s.Children(id))
		}
		if n.IsLeaf() && (n.WeakIntra != nil && n.WeakIntra.Len() > 0 || n.StrongIntra != nil && n.StrongIntra.Len() > 0) {
			add("leaf %s carries intra-transaction orders", id)
		}
	}
	// Parent chains must terminate (no cycles among parent pointers).
	for _, id := range s.NodeIDs() {
		seen := map[NodeID]bool{}
		for cur := id; cur != ""; {
			if seen[cur] {
				add("node %s: cyclic parent chain through %s", id, cur)
				break
			}
			seen[cur] = true
			n := s.nodes[cur]
			if n == nil {
				break
			}
			cur = n.Parent
		}
	}
	if len(errs) > 0 {
		return errors.Join(errs...)
	}

	// Definition 4 item 6: no recursion; IG acyclic.
	ig := s.InvocationGraph()
	for _, sc := range s.Schedules() {
		if ig.Has(sc.ID, sc.ID) {
			add("schedule %s invokes itself", sc.ID)
		}
	}
	if c := ig.FindCycle(); c != nil {
		add("invocation graph is cyclic: %v", c)
	}
	return errors.Join(errs...)
}

// Validate checks the system against the model's axioms (Definitions 2, 3
// and 4). It returns nil if the system is well-formed, or an error joining
// every violation found. Validation works on a normalized copy, so the
// caller's relations need not be transitively closed.
//
// Validate checks well-formedness only. A well-formed system can still be
// an incorrect execution; correctness (Comp-C) is decided by internal/front.
func (s *System) Validate() error {
	if err := s.ValidateStructure(); err != nil {
		// Deeper checks assume a sound forest.
		return err
	}
	var errs []error
	add := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	// Work on a normalized copy for the order-theoretic axioms.
	ns := s.Clone()
	ns.Normalize()

	// Per-transaction intra orders (Definition 2).
	for _, id := range ns.NodeIDs() {
		n := ns.nodes[id]
		if n.IsLeaf() {
			continue
		}
		kids := map[NodeID]struct{}{}
		for _, k := range ns.children[id] {
			kids[k] = struct{}{}
		}
		if n.WeakIntra != nil {
			for _, p := range n.WeakIntra.Pairs() {
				if _, ok := kids[p[0]]; !ok {
					add("transaction %s: intra order mentions non-operation %s", id, p[0])
				}
				if _, ok := kids[p[1]]; !ok {
					add("transaction %s: intra order mentions non-operation %s", id, p[1])
				}
			}
			if n.WeakIntra.HasCycle() {
				add("transaction %s: weak intra-transaction order is cyclic", id)
			}
		}
		if n.StrongIntra != nil && n.WeakIntra != nil && !n.WeakIntra.Contains(n.StrongIntra) {
			add("transaction %s: strong intra order not contained in weak intra order", id)
		}
	}

	// Per-schedule axioms (Definition 3).
	for _, sc := range ns.Schedules() {
		trans := ns.Transactions(sc.ID)
		ops := ns.Ops(sc.ID)
		isTx := map[NodeID]bool{}
		for _, t := range trans {
			isTx[t] = true
		}
		isOp := map[NodeID]bool{}
		for _, o := range ops {
			isOp[o] = true
		}

		// Domains.
		sc.Conflicts.Each(func(a, b NodeID) {
			if !isOp[a] || !isOp[b] {
				add("schedule %s: conflict (%s,%s) mentions a non-operation", sc.ID, a, b)
			}
		})
		for _, p := range sc.WeakIn.Pairs() {
			if !isTx[p[0]] || !isTx[p[1]] {
				add("schedule %s: weak input order (%s,%s) mentions a non-transaction", sc.ID, p[0], p[1])
			}
		}
		for _, p := range sc.WeakOut.Pairs() {
			if !isOp[p[0]] || !isOp[p[1]] {
				add("schedule %s: weak output order (%s,%s) mentions a non-operation", sc.ID, p[0], p[1])
			}
		}

		// Partial orders: acyclic after closure.
		if sc.WeakIn.HasCycle() {
			add("schedule %s: weak input order is cyclic", sc.ID)
		}
		if sc.WeakOut.HasCycle() {
			add("schedule %s: weak output order is cyclic", sc.ID)
		}

		// Containments ⇒ ⊆ → and ≪ ⊆ ≺ (Definition 3 item 4). Normalize
		// already folds strong into weak, so check on the normalized copy
		// against the original to catch explicit contradictions instead:
		// after closure the containment holds by construction, so verify
		// the fold did not create cycles (caught above) and move on.

		// Definition 3 item 1: output order of conflicting operations.
		sc.Conflicts.Each(func(o, o2 NodeID) {
			t, t2 := ns.Parent(o), ns.Parent(o2)
			if t == t2 {
				return // intra-transaction conflicts are ordered by item 2
			}
			switch {
			case sc.WeakIn.Has(t, t2):
				if !sc.WeakOut.Has(o, o2) {
					add("schedule %s: %s→%s requires conflicting ops %s≺%s (Def 3.1a)", sc.ID, t, t2, o, o2)
				}
			case sc.WeakIn.Has(t2, t):
				if !sc.WeakOut.Has(o2, o) {
					add("schedule %s: %s→%s requires conflicting ops %s≺%s (Def 3.1b)", sc.ID, t2, t, o2, o)
				}
			default:
				if !sc.WeakOut.Has(o, o2) && !sc.WeakOut.Has(o2, o) {
					add("schedule %s: conflicting ops %s,%s left unordered (Def 3.1c)", sc.ID, o, o2)
				}
			}
		})

		// Definition 3 item 2 (interpretation D1): output orders respect
		// each transaction's intra orders.
		for _, t := range trans {
			n := ns.nodes[t]
			if n.WeakIntra != nil && !sc.WeakOut.Contains(n.WeakIntra) {
				add("schedule %s: weak output order violates intra order of %s (Def 3.2)", sc.ID, t)
			}
			if n.StrongIntra != nil && !sc.StrongOut.Contains(n.StrongIntra) {
				add("schedule %s: strong output order violates strong intra order of %s (Def 3.2)", sc.ID, t)
			}
		}

		// Definition 3 item 3: strong input order forces strong output order
		// between all operations of the two transactions.
		for _, p := range sc.StrongIn.Pairs() {
			for _, o := range ns.Children(p[0]) {
				for _, o2 := range ns.Children(p[1]) {
					if !sc.StrongOut.Has(o, o2) {
						add("schedule %s: %s⇒%s requires %s≪%s (Def 3.3)", sc.ID, p[0], p[1], o, o2)
					}
				}
			}
		}
	}

	// Definition 4 item 7: output orders propagate as input orders to the
	// schedule both operations are sent to.
	for _, sc := range ns.Schedules() {
		for _, p := range sc.WeakOut.Pairs() {
			a, b := ns.nodes[p[0]], ns.nodes[p[1]]
			if a == nil || b == nil || a.IsLeaf() || b.IsLeaf() {
				continue
			}
			if a.Sched != b.Sched {
				continue
			}
			target := ns.schedules[a.Sched]
			if target == nil {
				continue
			}
			if !target.WeakIn.Has(p[0], p[1]) {
				add("schedule %s: %s≺%s not passed to %s as weak input order (Def 4.7)", sc.ID, p[0], p[1], a.Sched)
			}
			if sc.StrongOut.Has(p[0], p[1]) && !target.StrongIn.Has(p[0], p[1]) {
				add("schedule %s: %s≪%s not passed to %s as strong input order (Def 4.7)", sc.ID, p[0], p[1], a.Sched)
			}
		}
	}

	return errors.Join(errs...)
}
