package model_test

import (
	"bytes"
	"testing"

	"compositetx/internal/front"
	"compositetx/internal/model"
)

// FuzzDecodeCheck: the decoder must never panic on arbitrary input, and
// any successfully decoded, structurally valid system must be decidable
// by the checker without error.
func FuzzDecodeCheck(f *testing.F) {
	seed := func(sys *model.System) {
		var buf bytes.Buffer
		if err := sys.Encode(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	seed(front.Figure1System())
	seed(front.Figure3System())
	seed(front.Figure4System())
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"schedules":[{"id":"S"}],"nodes":[{"id":"T","schedule":"S"}]}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		sys := model.NewSystem()
		if err := sys.UnmarshalJSON(data); err != nil {
			return // malformed input is fine; panics are not
		}
		if err := sys.ValidateStructure(); err != nil {
			return
		}
		if _, err := front.Check(sys, front.Options{}); err != nil {
			// Check may reject recursive configurations (already covered
			// by ValidateStructure) but must not fail otherwise.
			t.Fatalf("Check failed on structurally valid input: %v", err)
		}
	})
}
