package wal

import (
	"sync"
	"testing"
)

// TruncateBefore edge cases hit by the distributed runtime's
// prepare/decision traffic: participant logs checkpoint and truncate
// while 2PC batches are still being appended concurrently.

// fillSegments appends n sample records through a small-segment log and
// returns the open log.
func fillSegments(t *testing.T, dir string, n int) *Log {
	t.Helper()
	l, _, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range sampleRecords(n) {
		if _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	return l
}

// TestTruncateBarrierBehindFirstSegment puts the barrier strictly behind
// the first surviving segment — once immediately (LSN 0/1 on a fresh
// log), then again after a real truncation has already moved the start
// of history. Both must be no-ops, not errors and not deletions.
func TestTruncateBarrierBehindFirstSegment(t *testing.T) {
	dir := t.TempDir()
	l := fillSegments(t, dir, 40)
	if n, err := l.TruncateBefore(0); err != nil || n != 0 {
		t.Fatalf("TruncateBefore(0) = (%d, %v), want (0, nil)", n, err)
	}

	// Anchor LSNs with a checkpoint, truncate for real, then aim the
	// barrier behind the new first segment.
	ckLSN, err := l.AppendCheckpoint(ckItems(1), Record{Meta: []byte(`{}`)})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := l.TruncateBefore(ckLSN); err != nil || n == 0 {
		t.Fatalf("real truncation = (%d, %v), want (>0, nil)", n, err)
	}
	after := segCount(t, dir)
	// History now starts mid-sequence; a barrier behind it must not
	// touch anything (the segments it names are already gone).
	for _, lsn := range []uint64{0, 1, 2, 5} {
		if n, err := l.TruncateBefore(lsn); err != nil || n != 0 {
			t.Fatalf("TruncateBefore(%d) after truncation = (%d, %v), want (0, nil)", lsn, n, err)
		}
	}
	if got := segCount(t, dir); got != after {
		t.Fatalf("segment count moved %d -> %d on a behind-history barrier", after, got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTruncateBarrierPastLastRecord aims the barrier beyond every
// appended LSN: only the current segment survives, the log stays
// appendable, and — because the checkpoint marker lives in the surviving
// segment — reopen still re-anchors absolute LSNs correctly.
func TestTruncateBarrierPastLastRecord(t *testing.T) {
	dir := t.TempDir()
	l := fillSegments(t, dir, 40)
	ckLSN, err := l.AppendCheckpoint(ckItems(1), Record{Meta: []byte(`{}`)})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := l.TruncateBefore(ckLSN + 1000); err != nil || n == 0 {
		t.Fatalf("past-end truncation = (%d, %v), want (>0, nil)", n, err)
	}
	if got := segCount(t, dir); got != 1 {
		t.Fatalf("%d segments survive a past-end barrier, want 1 (current only)", got)
	}
	// Idempotent: a second past-end barrier has nothing left to delete.
	if n, err := l.TruncateBefore(ckLSN + 2000); err != nil || n != 0 {
		t.Fatalf("repeat past-end truncation = (%d, %v), want (0, nil)", n, err)
	}
	lsn, err := l.Append(Record{Type: TypeDecision, Txn: "T-post", Mode: "commit"})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != ckLSN+1 {
		t.Fatalf("post-truncation LSN = %d, want %d", lsn, ckLSN+1)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, existing, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if existing == 0 {
		t.Fatal("reopen found no records in the surviving segment")
	}
	lsn2, err := l2.Append(Record{Type: TypeEnd, Txn: "T-post"})
	if err != nil {
		t.Fatal(err)
	}
	if lsn2 != ckLSN+2 {
		t.Fatalf("post-reopen LSN = %d, want %d (anchor lost)", lsn2, ckLSN+2)
	}
}

// TestTruncateRacesAppendBatch truncates concurrently with AppendBatch
// writers (the 2PC decision batches of the distributed runtime) and
// checks, under -race and by scan, that no surviving batch is torn: for
// every batch whose first record survives truncation, all of its records
// survive, contiguous and in order.
func TestTruncateRacesAppendBatch(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 512, SyncEvery: 8})
	if err != nil {
		t.Fatal(err)
	}

	const (
		writers       = 4
		batchesPer    = 30
		recsPerBatch  = 3
		truncateEvery = 10
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batchesPer; b++ {
				txn := batchTxn(w, b)
				batch := make([]Record, recsPerBatch)
				for i := range batch {
					batch[i] = Record{Type: TypePrepare, Txn: txn, Node: nodeName(i), Seq: uint64(i)}
				}
				batch[recsPerBatch-1].Type = TypeDecision
				if _, err := l.AppendBatch(batch); err != nil {
					t.Errorf("writer %d batch %d: %v", w, b, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < truncateEvery; i++ {
			// Chase the tail: barrier at the current record count. Racing
			// appends can only make the real tail larger, so the current
			// segment rule keeps every in-flight batch safe.
			if _, err := l.TruncateBefore(l.Records()); err != nil {
				t.Errorf("truncate %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// No checkpoint marker was written, so ReadAll's absolute LSNs are
	// meaningless after truncation — but batch contiguity is checkable
	// from record adjacency alone.
	recs, _, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for i < len(recs) {
		txn := recs[i].Txn
		// A batch may have lost a prefix to truncation only if its whole
		// segment went; segment-granular truncation means we either see a
		// batch's full run or (at the scan start) its tail. Adjacent
		// records of one batch must share the txn and ascend by Seq.
		j := i
		for j < len(recs) && recs[j].Txn == txn {
			if j > i && recs[j].Seq != recs[j-1].Seq+1 {
				t.Fatalf("batch %s torn: seq %d follows %d at index %d", txn, recs[j].Seq, recs[j-1].Seq, j)
			}
			j++
		}
		if recs[j-1].Type != TypeDecision && j != len(recs) {
			t.Fatalf("batch %s interleaved or truncated mid-log: last type %v at index %d", txn, recs[j-1].Type, j-1)
		}
		i = j
	}
}

// TestNewRecordTypesRoundTrip checks the 2PC record kinds survive the
// codec and a reopen scan.
func TestNewRecordTypesRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		{Type: TypePrepare, Txn: "T3", Node: "attempt-2", Comp: "bank", Seq: 17},
		{Type: TypeDecision, Txn: "T3", Mode: "commit"},
		{Type: TypeDecision, Txn: "T4", Mode: "abort"},
		{Type: TypeEnd, Txn: "T3"},
	}
	if _, err := l.AppendBatch(want); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(want) {
		t.Fatalf("scan found %d records, want %d", len(recs), len(want))
	}
	for i := range want {
		if recs[i].Type != want[i].Type || recs[i].Txn != want[i].Txn ||
			recs[i].Mode != want[i].Mode || recs[i].Seq != want[i].Seq {
			t.Fatalf("record %d = %+v, want %+v", i, recs[i], want[i])
		}
	}
	for _, tt := range []Type{TypePrepare, TypeDecision, TypeEnd} {
		if s := tt.String(); s == "" || s[0] == 'T' {
			t.Fatalf("Type(%d).String() = %q, want a named kind", tt, s)
		}
	}
}

func batchTxn(w, b int) string  { return "T" + string(rune('A'+w)) + "-" + itoa(b) }
func nodeName(i int) string     { return "n" + itoa(i) }
func itoa(n int) (out string) { // tiny positive-int formatter for test names
	if n == 0 {
		return "0"
	}
	for n > 0 {
		out = string(rune('0'+n%10)) + out
		n /= 10
	}
	return out
}
