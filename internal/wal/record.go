package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Type names a WAL record kind. The log is typed so recovery can rebuild
// both halves of the runtime's volatile state: the data stores (from
// applies, compensations and their cancellation records) and the recorded
// execution (from node/event/commit records), without guessing at byte
// payloads.
type Type uint8

const (
	// TypeMeta is the first record of every log: an opaque header blob
	// (the runtime serializes its topology and protocol into it) that
	// recovery uses to rebuild the component configuration.
	TypeMeta Type = 1 + iota
	// TypeSeed is one baseline store item captured when the WAL is
	// attached: recovery replays seeds before any apply, so pre-loaded
	// balances survive a crash.
	TypeSeed
	// TypeApply journals one state-mutating store operation before it
	// executes: component, op (semantic mode, item, arg, physical impl)
	// and the before-value needed to invert it.
	TypeApply
	// TypeApplyFail cancels an earlier TypeApply whose store execution
	// failed after journaling (fault injection vetoed it): recovery must
	// not replay the referenced apply.
	TypeApplyFail
	// TypeComp journals one compensation (the inverse operation actually
	// applied during rollback), referencing the TypeApply it undoes.
	TypeComp
	// TypeQuarantine supersedes a TypeComp whose execution failed
	// permanently: the forward effect leaked, recovery must keep the
	// referenced apply un-compensated and re-report the quarantine.
	TypeQuarantine
	// TypeNode declares one forest node of a committed transaction
	// (written in the commit batch).
	TypeNode
	// TypeEvent is one granted semantic operation of a committed
	// transaction, with the global sequence number fixing conflict order.
	TypeEvent
	// TypeCommit terminates a commit batch; a transaction is recovered
	// as committed iff its TypeCommit record is durable.
	TypeCommit
	// TypeAbort marks a root transaction as permanently rolled back
	// (client abort, retry-budget exhaustion, or a recovery undo pass):
	// its applies are already neutralized by journaled compensations.
	TypeAbort
	// TypeCkItem is one store item of a checkpoint snapshot: the durable
	// value of Comp/Item at the checkpoint cut. Recovery seeds stores from
	// the last complete checkpoint's items instead of segment zero. A run
	// of ck-items without a following TypeCheckpoint marker is an
	// incomplete checkpoint (crash mid-checkpoint) and is ignored.
	TypeCkItem
	// TypeCheckpoint completes a checkpoint batch. Its Ref field holds the
	// record's own LSN — checkpoints are self-anchoring, which is how Open
	// restores absolute LSNs after older segments are truncated away. Its
	// Meta blob carries the runtime's checkpoint header (configuration,
	// clock, cumulative counters).
	TypeCheckpoint
	// TypePrepare is the participant half of presumed-abort 2PC: forced
	// before the participant votes yes. Txn/Node carry the transaction
	// and attempt, Seq carries the root's wait-die timestamp so recovery
	// can re-acquire locks for the in-doubt transaction at the right
	// priority. A prepared transaction with no following TypeDecision is
	// in doubt and must run the termination protocol (query the
	// coordinator) before its locks can be released.
	TypePrepare
	// TypeDecision records a 2PC outcome. On the coordinator it is the
	// forced commit decision (Mode "commit"; aborts are presumed and
	// never logged). On a participant it is forced before acking a
	// Decide message (Mode "commit" or "abort"), making the ack claim
	// durable.
	TypeDecision
	// TypeEnd is the coordinator's non-forced note that every
	// participant acked a decision: the transaction needs no re-delivery
	// after coordinator recovery. Decisions without a TypeEnd are
	// re-delivered.
	TypeEnd

	typeMax
)

func (t Type) String() string {
	switch t {
	case TypeMeta:
		return "meta"
	case TypeSeed:
		return "seed"
	case TypeApply:
		return "apply"
	case TypeApplyFail:
		return "apply-fail"
	case TypeComp:
		return "comp"
	case TypeQuarantine:
		return "quarantine"
	case TypeNode:
		return "node"
	case TypeEvent:
		return "event"
	case TypeCommit:
		return "commit"
	case TypeAbort:
		return "abort"
	case TypeCkItem:
		return "ck-item"
	case TypeCheckpoint:
		return "checkpoint"
	case TypePrepare:
		return "prepare"
	case TypeDecision:
		return "decision"
	case TypeEnd:
		return "end"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Record is one typed log entry. The struct is a flat union: every type
// uses the subset of fields it needs and leaves the rest zero, which keeps
// the codec branch-free (all fields are always encoded, empties cost one
// byte each).
type Record struct {
	Type Type

	Meta []byte // TypeMeta: opaque header blob

	Txn    string // root transaction the record belongs to
	Node   string // forest node / step id
	Parent string // TypeNode: parent node id ("" for roots); TypeEvent: parent transaction
	Sched  string // TypeNode: schedule (component) for transactions, "" for leaves
	Comp   string // component of an apply/comp/seed/event

	Item string // store item or semantic item
	Mode string // semantic mode
	Impl string // physical implementation mode ("" = Mode itself)
	Arg  int64  // operation argument
	Prev int64  // TypeApply: before-value (undo info); TypeSeed: the value

	Seq uint64 // TypeEvent: global conflict sequence number
	Ref uint64 // LSN of the TypeApply a comp/fail/quarantine refers to
}

// appendBody serializes the record body (type byte + fields) onto b.
func appendBody(b []byte, r Record) []byte {
	b = append(b, byte(r.Type))
	b = appendBlob(b, r.Meta)
	b = appendStr(b, r.Txn)
	b = appendStr(b, r.Node)
	b = appendStr(b, r.Parent)
	b = appendStr(b, r.Sched)
	b = appendStr(b, r.Comp)
	b = appendStr(b, r.Item)
	b = appendStr(b, r.Mode)
	b = appendStr(b, r.Impl)
	b = binary.AppendVarint(b, r.Arg)
	b = binary.AppendVarint(b, r.Prev)
	b = binary.AppendUvarint(b, r.Seq)
	b = binary.AppendUvarint(b, r.Ref)
	return b
}

// appendFrame serializes one framed record directly onto b: the 8-byte
// header is reserved first, the body is encoded in place behind it, and
// the length and CRC are backfilled over the reserved bytes. Encoding
// straight into the caller's buffer (the log's write buffer) avoids a
// per-record scratch encode plus copy.
func appendFrame(b []byte, r Record) []byte {
	hdr := len(b)
	var zero [frameHeaderLen]byte
	b = append(b, zero[:]...)
	b = appendBody(b, r)
	body := b[hdr+frameHeaderLen:]
	binary.LittleEndian.PutUint32(b[hdr:], uint32(len(body)))
	binary.LittleEndian.PutUint32(b[hdr+4:], crc32.ChecksumIEEE(body))
	return b
}

// decodeBody parses a record body. A decode failure on a CRC-valid frame
// is real corruption (or a format mismatch), never a torn tail.
func decodeBody(b []byte) (Record, error) {
	var r Record
	if len(b) == 0 {
		return r, fmt.Errorf("wal: empty record body")
	}
	r.Type = Type(b[0])
	if r.Type == 0 || r.Type >= typeMax {
		return r, fmt.Errorf("wal: unknown record type %d", b[0])
	}
	d := decoder{b: b[1:]}
	r.Meta = d.blob()
	r.Txn = d.str()
	r.Node = d.str()
	r.Parent = d.str()
	r.Sched = d.str()
	r.Comp = d.str()
	r.Item = d.str()
	r.Mode = d.str()
	r.Impl = d.str()
	r.Arg = d.varint()
	r.Prev = d.varint()
	r.Seq = d.uvarint()
	r.Ref = d.uvarint()
	if d.err != nil {
		return r, fmt.Errorf("wal: corrupt %s record: %w", r.Type, d.err)
	}
	if len(d.b) != 0 {
		return r, fmt.Errorf("wal: %d trailing bytes in %s record", len(d.b), r.Type)
	}
	return r, nil
}

func appendBlob(b, blob []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(blob)))
	return append(b, blob...)
}

func appendStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

type decoder struct {
	b   []byte
	err error
}

func (d *decoder) blob() []byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if uint64(len(d.b)) < n {
		d.err = fmt.Errorf("truncated field (want %d bytes, have %d)", n, len(d.b))
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	if len(out) == 0 {
		return nil
	}
	return append([]byte(nil), out...)
}

func (d *decoder) str() string { return string(d.blob()) }

func (d *decoder) uvarint() uint64 {
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		if d.err == nil {
			d.err = fmt.Errorf("bad uvarint")
		}
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) varint() int64 {
	v, n := binary.Varint(d.b)
	if n <= 0 {
		if d.err == nil {
			d.err = fmt.Errorf("bad varint")
		}
		return 0
	}
	d.b = d.b[n:]
	return v
}
