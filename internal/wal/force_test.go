package wal

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func forceRec(i int) Record {
	return Record{Type: TypeDecision, Txn: fmt.Sprintf("T%d", i), Mode: "commit"}
}

// A window holds many concurrent forces and serves them with fewer
// fsyncs than forces; every waiter completes nil and every record is
// durable.
func TestForceCoalescesWindows(t *testing.T) {
	dir := t.TempDir()
	l, n, err := Open(dir, Options{SyncEvery: -1, GroupWindow: 2 * time.Millisecond})
	if err != nil || n != 0 {
		t.Fatalf("open: n=%d err=%v", n, err)
	}
	const forces = 32
	chans := make([]<-chan error, forces)
	for i := 0; i < forces; i++ {
		chans[i] = l.Force([]Record{forceRec(i)})
	}
	for i, ch := range chans {
		if err := <-ch; err != nil {
			t.Fatalf("force %d: %v", i, err)
		}
	}
	gs := l.GroupStats()
	if gs.Forces != forces || gs.ForcedRecords != forces {
		t.Fatalf("stats %+v, want %d forces/records", gs, forces)
	}
	if gs.Windows == 0 || gs.Windows >= forces {
		t.Fatalf("windows=%d not coalesced (forces=%d)", gs.Windows, forces)
	}
	if gs.MaxBatch < 2 {
		t.Fatalf("maxbatch=%d, want >=2", gs.MaxBatch)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _, err := ReadAll(dir)
	if err != nil || len(recs) != forces {
		t.Fatalf("readall: %d recs err=%v", len(recs), err)
	}
}

// GroupMaxRecords flushes an open window early — forces complete even
// though the window itself would stay open for an hour.
func TestForceMaxRecordsFlushesEarly(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SyncEvery: -1, GroupWindow: time.Hour, GroupMaxRecords: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	chans := make([]<-chan error, 8)
	for i := range chans {
		chans[i] = l.Force([]Record{forceRec(i)})
	}
	for i, ch := range chans {
		select {
		case err := <-ch:
			if err != nil {
				t.Fatalf("force %d: %v", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("force %d did not complete; GroupMaxRecords did not flush early", i)
		}
	}
	if gs := l.GroupStats(); gs.Windows == 0 {
		t.Fatalf("no flush window recorded: %+v", gs)
	}
}

// Abandon (crash) with a group flush pending: every waiter observes an
// error — never a false durability ack — and the records are gone after
// reopen.
func TestForceAbandonFailsPendingWaiters(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SyncEvery: -1, GroupWindow: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	var chans []<-chan error
	for i := 0; i < 3; i++ {
		chans = append(chans, l.Force([]Record{forceRec(i)}))
	}
	if err := l.Abandon(nil); err != nil {
		t.Fatal(err)
	}
	for i, ch := range chans {
		select {
		case err := <-ch:
			if !errors.Is(err, ErrClosed) {
				t.Fatalf("waiter %d got %v, want ErrClosed", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("waiter %d hung after Abandon", i)
		}
	}
	if err := <-l.Force([]Record{forceRec(99)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("force after abandon: %v, want ErrClosed", err)
	}
	recs, _, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("reopen found %d records; unsynced group flush must be lost", len(recs))
	}
}

// A sync triggered by any path (explicit Sync here) completes pending
// waiters: their bytes are flushed and fsynced with the rest of the
// buffer.
func TestForceCompletedByExplicitSync(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SyncEvery: -1, GroupWindow: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ch := l.Force([]Record{forceRec(0)})
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-ch:
		if err != nil {
			t.Fatalf("force: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("explicit Sync did not complete the pending force")
	}
}

// Concurrent Append/Force/Sync traffic under -race, then Close: no
// waiter hangs, no record is lost, the reopened log scans clean.
func TestForceConcurrentAppendSyncClose(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SyncEvery: 4, SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers   = 8
		perWorker = 40
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				switch i % 3 {
				case 0:
					if _, err := l.Append(forceRec(w*1000 + i)); err != nil {
						errs <- err
					}
				case 1:
					errs <- <-l.Force([]Record{forceRec(w*1000 + i)})
				default:
					if err := l.Sync(); err != nil {
						errs <- err
					}
					if _, err := l.Append(forceRec(w*1000 + i)); err != nil {
						errs <- err
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("concurrent op: %v", err)
		}
	}
	want := l.Records()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, info, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(recs)) != want || info.TornBytes != 0 {
		t.Fatalf("reopen: %d records (want %d), torn=%d", len(recs), want, info.TornBytes)
	}
}
