package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func sampleRecords(n int) []Record {
	recs := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		switch i % 4 {
		case 0:
			recs = append(recs, Record{
				Type: TypeApply, Txn: fmt.Sprintf("T%d", i), Node: fmt.Sprintf("T%d.s1", i),
				Comp: "bank", Item: "acct", Mode: "incr", Impl: "incr", Arg: int64(i), Prev: int64(100 - i),
			})
		case 1:
			recs = append(recs, Record{
				Type: TypeEvent, Txn: fmt.Sprintf("T%d", i), Node: fmt.Sprintf("T%d.s1", i),
				Parent: fmt.Sprintf("T%d", i), Comp: "bank", Item: "acct", Mode: "incr", Seq: uint64(i + 1),
			})
		case 2:
			recs = append(recs, Record{Type: TypeCommit, Txn: fmt.Sprintf("T%d", i)})
		default:
			recs = append(recs, Record{Type: TypeComp, Txn: fmt.Sprintf("T%d", i),
				Comp: "bank", Item: "acct", Mode: "incr", Arg: -int64(i), Ref: uint64(i)})
		}
	}
	return recs
}

// TestRoundTrip appends records, closes, and reads them back verbatim.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, existing, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if existing != 0 {
		t.Fatalf("fresh log reports %d existing records", existing)
	}
	want := sampleRecords(23)
	want = append(want, Record{Type: TypeMeta, Meta: []byte(`{"version":1}`)})
	for i, rec := range want {
		lsn, err := l.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("record %d got LSN %d", i, lsn)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, info, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.TornBytes != 0 || info.Records != len(want) {
		t.Fatalf("scan info %+v, want %d records, 0 torn", info, len(want))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// TestReopenAppend closes a log, reopens it, appends more, and sees the
// concatenation with monotone LSNs.
func TestReopenAppend(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	first := sampleRecords(7)
	for _, rec := range first {
		if _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, existing, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if existing != 7 {
		t.Fatalf("reopen reports %d existing records, want 7", existing)
	}
	second := sampleRecords(5)
	for i, rec := range second {
		lsn, err := l2.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(7+i+1) {
			t.Fatalf("post-reopen record %d got LSN %d", i, lsn)
		}
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 12 {
		t.Fatalf("got %d records, want 12", len(got))
	}
	if !reflect.DeepEqual(got[:7], first) || !reflect.DeepEqual(got[7:], second) {
		t.Fatal("reopened log does not concatenate the two sessions")
	}
}

// TestTornTail appends garbage half-frames to the last segment and checks
// both ReadAll (skips, reports TornBytes) and Open (physically truncates).
func TestTornTail(t *testing.T) {
	cases := []struct {
		name string
		tear func([]byte) []byte // valid frame -> bytes actually appended
	}{
		{"short-header", func(frame []byte) []byte { return frame[:3] }},
		{"short-body", func(frame []byte) []byte { return frame[:len(frame)-2] }},
		{"bad-crc", func(frame []byte) []byte {
			out := append([]byte(nil), frame...)
			out[len(out)-1] ^= 0xff
			return out
		}},
		{"giant-length", func(frame []byte) []byte {
			out := append([]byte(nil), frame...)
			binary.LittleEndian.PutUint32(out[0:], maxRecordBytes+1)
			return out
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			l, _, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			want := sampleRecords(9)
			for _, rec := range want {
				if _, err := l.Append(rec); err != nil {
					t.Fatal(err)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}

			// Craft one more valid frame, then append a torn variant of it.
			body := appendBody(nil, Record{Type: TypeCommit, Txn: "Ttorn"})
			frame := make([]byte, frameHeaderLen, frameHeaderLen+len(body))
			binary.LittleEndian.PutUint32(frame[0:], uint32(len(body)))
			binary.LittleEndian.PutUint32(frame[4:], crcOf(body))
			frame = append(frame, body...)
			seg := filepath.Join(dir, segmentName(1))
			f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			torn := tc.tear(frame)
			if _, err := f.Write(torn); err != nil {
				t.Fatal(err)
			}
			f.Close()

			got, info, err := ReadAll(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("ReadAll returned %d records, want %d", len(got), len(want))
			}
			if info.TornBytes != int64(len(torn)) {
				t.Fatalf("TornBytes = %d, want %d", info.TornBytes, len(torn))
			}

			// Open truncates the tear and appending afterwards works.
			l2, existing, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if existing != uint64(len(want)) {
				t.Fatalf("Open reports %d records, want %d", existing, len(want))
			}
			if _, err := l2.Append(Record{Type: TypeAbort, Txn: "Tafter"}); err != nil {
				t.Fatal(err)
			}
			if err := l2.Close(); err != nil {
				t.Fatal(err)
			}
			got2, info2, err := ReadAll(dir)
			if err != nil {
				t.Fatal(err)
			}
			if info2.TornBytes != 0 {
				t.Fatalf("torn bytes survived Open: %d", info2.TornBytes)
			}
			if len(got2) != len(want)+1 || got2[len(got2)-1].Txn != "Tafter" {
				t.Fatalf("post-truncation append lost: %d records", len(got2))
			}
		})
	}
}

// TestAbandonDropsUnsynced checks the group-commit loss window: with
// SyncEvery=4, Abandon after 10 appends must keep exactly the 8 synced
// records and drop the 2 buffered ones.
func TestAbandonDropsUnsynced(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SyncEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords(10)
	for _, rec := range recs {
		if _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	l.Abandon(nil)
	if _, err := l.Append(Record{Type: TypeCommit}); err != ErrClosed {
		t.Fatalf("append after Abandon: %v, want ErrClosed", err)
	}
	got, info, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 8 {
		t.Fatalf("after abandon: %d records survive, want 8 (synced prefix)", len(got))
	}
	if info.TornBytes != 0 {
		t.Fatalf("abandon without tear left %d torn bytes", info.TornBytes)
	}
	if !reflect.DeepEqual(got, recs[:8]) {
		t.Fatal("surviving records are not the synced prefix")
	}
}

// TestAbandonTornRecord leaves a half-written frame at the tail; ReadAll
// must report it and Open must truncate it.
func TestAbandonTornRecord(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords(5)
	for _, rec := range recs {
		if _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	l.Abandon(&Record{Type: TypeApply, Txn: "Ttear", Comp: "bank", Item: "acct", Mode: "incr", Arg: 7})
	got, info, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("%d records survive the tear, want 5", len(got))
	}
	if info.TornBytes == 0 {
		t.Fatal("Abandon(torn) left no torn bytes")
	}
	l2, existing, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if existing != 5 {
		t.Fatalf("Open after tear reports %d records, want 5", existing)
	}
	l2.Close()
}

// TestMidLogCorruption flips a byte in a non-final segment: that is real
// corruption, not a torn tail, and must be an error.
func TestMidLogCorruption(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range sampleRecords(64) {
		if _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := segmentFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected multiple segments, got %d", len(segs))
	}
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(segs[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadAll(dir); err == nil {
		t.Fatal("ReadAll accepted a corrupt non-final segment")
	}
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a corrupt non-final segment")
	}
}

// TestSegmentRotation writes past several rotation points and checks that
// records and LSNs are continuous across segment files.
func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 200, SyncEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords(120)
	for i, rec := range want {
		lsn, err := l.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("LSN discontinuity at %d: got %d", i, lsn)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, info, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Segments < 3 {
		t.Fatalf("rotation produced only %d segments", info.Segments)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("rotation lost or reordered records: %d vs %d", len(got), len(want))
	}

	// Reopen after rotation continues in the last segment.
	l2, existing, err := Open(dir, Options{SegmentBytes: 200})
	if err != nil {
		t.Fatal(err)
	}
	if existing != uint64(len(want)) {
		t.Fatalf("reopen after rotation reports %d records", existing)
	}
	if _, err := l2.Append(Record{Type: TypeCommit, Txn: "Tlast"}); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	got2, _, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != len(want)+1 {
		t.Fatalf("append after rotated reopen lost records: %d", len(got2))
	}
}

// TestDecodeRejectsUnknownType ensures forward-compat failures are loud.
func TestDecodeRejectsUnknownType(t *testing.T) {
	if _, err := decodeBody([]byte{byte(typeMax)}); err == nil {
		t.Fatal("decodeBody accepted an unknown type")
	}
	if _, err := decodeBody(nil); err == nil {
		t.Fatal("decodeBody accepted an empty body")
	}
	body := appendBody(nil, Record{Type: TypeApply, Txn: "T1", Item: "x"})
	if _, err := decodeBody(body[:len(body)-1]); err == nil {
		t.Fatal("decodeBody accepted a truncated body")
	}
	if _, err := decodeBody(append(body, 0)); err == nil {
		t.Fatal("decodeBody accepted trailing bytes")
	}
}

func crcOf(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

func BenchmarkWALAppend(b *testing.B) {
	rec := Record{
		Type: TypeApply, Txn: "T42", Node: "T42.s2", Comp: "bank",
		Item: "acct-17", Mode: "incr", Impl: "incr", Arg: -25, Prev: 975,
	}
	for _, bc := range []struct {
		name string
		sync int
	}{
		{"sync=1", 1},
		{"sync=64", 64},
		{"sync=none", -1},
	} {
		b.Run(bc.name, func(b *testing.B) {
			dir := b.TempDir()
			l, _, err := Open(dir, Options{SyncEvery: bc.sync})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Append(rec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
