// Package wal is the durable write-ahead log behind the composite
// runtime's crash recovery: an append-only, segmented, CRC-checked record
// log. The runtime (internal/sched) journals store applies, compensations
// and committed execution records through it before mutating volatile
// state, so a crash-abandoned run can be rebuilt — redo the committed
// work, undo the incomplete rest — and re-verified against Comp-C.
//
// Format. A log is a directory of segment files 00000001.seg, 00000002.seg,
// ... Each segment starts with an 8-byte magic and holds framed records:
//
//	[len uint32][crc32 uint32][body]   body = type byte + fields
//
// The CRC (IEEE, over the body) makes torn tails detectable: a crash may
// leave a half-written frame at the end of the last segment, which Open
// truncates and ReadAll skips. A bad frame anywhere else is corruption and
// is reported as an error, never silently dropped.
//
// Durability. Appends are buffered; Options.SyncEvery is the group-commit
// knob (fsync every Nth record). Abandon simulates a crash for tests and
// fault injection: buffered-but-unsynced bytes are dropped — exactly the
// OS-cache loss window group commit trades away — and an optional torn
// frame is left at the tail.
//
// Cross-transaction group commit. Force appends records and returns a
// completion channel instead of blocking the caller on its own fsync: a
// flush daemon coalesces every force request pending at flush time into
// one contiguous write + one fsync, and completes all of their waiters
// together. The fsync itself runs outside the log mutex, so while one
// window's fsync is in flight new forces keep appending and form the
// next window — with Options.GroupWindow zero (the default) this is
// "natural batching": a force never waits longer than the fsync already
// in flight, and the batch size grows exactly as fast as the disk is
// slow.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

const (
	segMagic = "CTXWAL01"

	// defaultSegmentBytes rotates segments at 8 MiB.
	defaultSegmentBytes = 8 << 20

	// maxRecordBytes bounds a frame so a corrupt length field cannot
	// force a giant allocation.
	maxRecordBytes = 1 << 26

	frameHeaderLen = 8
)

// ErrClosed is returned by appends to a closed or crash-abandoned log.
var ErrClosed = errors.New("wal: log is closed")

// Options configures a log.
type Options struct {
	// SyncEvery is the group-commit knob: fsync after every Nth appended
	// record. 0 and 1 sync every record (maximum durability, the
	// default); N>1 amortizes the fsync over N records and can lose the
	// most recent unsynced records on a crash (recovery stays consistent,
	// it just sees a shorter history); negative values never fsync
	// (benchmark baseline; the OS still gets every flushed byte).
	SyncEvery int
	// SegmentBytes rotates to a new segment file once the current one
	// exceeds this size (0 = 8 MiB).
	SegmentBytes int64

	// GroupWindow holds the flush daemon open after a force request so
	// later requests can join the same fsync. 0 (the default) is natural
	// batching: the daemon flushes as soon as it is idle, adding no
	// latency — requests still coalesce whenever a flush is already in
	// flight, which is exactly when coalescing pays.
	GroupWindow time.Duration
	// GroupMaxRecords caps how many forced records may pile up inside an
	// open GroupWindow before the daemon flushes early (0 = 512). Only
	// meaningful with GroupWindow > 0.
	GroupMaxRecords int
}

func (o Options) normalized() Options {
	if o.SyncEvery == 0 {
		o.SyncEvery = 1
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = defaultSegmentBytes
	}
	if o.GroupMaxRecords <= 0 {
		o.GroupMaxRecords = 512
	}
	return o
}

// GroupStats counts the flush daemon's coalescing work.
type GroupStats struct {
	Forces        uint64 // Force calls accepted
	ForcedRecords uint64 // records appended through Force
	Windows       uint64 // flush windows (one fsync each) serving >=1 force
	MaxBatch      uint64 // most force waiters completed by a single window
}

// ScanInfo summarizes a ReadAll pass.
type ScanInfo struct {
	Segments  int
	Records   int
	TornBytes int64 // bytes of torn tail found (and skipped) in the last segment

	// FirstLSN is the absolute LSN of the first scanned record (0 when the
	// log is empty). It is 1 for an untruncated log; after TruncateBefore
	// has deleted older segments it is recovered from the self-anchoring
	// Ref of the last checkpoint marker.
	FirstLSN uint64
	// CheckpointLSN is the absolute LSN of the last complete checkpoint
	// marker, or 0 if the log holds none. Trailing ck-items without a
	// marker (a crash mid-checkpoint) do not move it.
	CheckpointLSN uint64
}

// Log is an open write-ahead log. All methods are safe for concurrent
// use; records are totally ordered by their returned LSN.
type Log struct {
	mu   sync.Mutex
	dir  string
	opts Options

	f   *os.File
	seg int // current segment index (1-based)

	buf      []byte // unflushed frames (the "OS would lose this" window is synced..size)
	size     int64  // segment offset including buffered bytes
	flushed  int64  // segment offset written to the file
	synced   int64  // segment offset known durable (fsynced)
	lsn      uint64 // records appended over the log's lifetime
	sinceSyn int

	// segs tracks the on-disk segments in index order, with the absolute
	// LSN of each segment's first record (or the next LSN to be written,
	// for the empty current segment). TruncateBefore uses it to decide
	// which segments are wholly older than a checkpoint.
	segs []segMeta

	// Group-commit state. waiters are the Force callers whose records sit
	// in the unsynced window; any successful syncLocked makes the whole
	// window durable, so every pending waiter completes on every sync —
	// including syncs triggered by SyncEvery, rotation or an explicit
	// Sync, not just the daemon's.
	waiters     []chan error
	pendingRecs int
	gstats      GroupStats
	daemonOn    bool
	daemonWG    sync.WaitGroup
	kick        chan struct{} // buffered(1): work is pending
	urgent      chan struct{} // buffered(1): flush now, skip the window
	stopc       chan struct{}

	closed    bool
	abandoned bool // Abandon ran: the unsynced tail was truncated away
}

type segMeta struct {
	idx   int    // segment index (file name)
	first uint64 // LSN of the segment's first record
}

// Open opens (creating if necessary) the log in dir and positions it for
// appending. Existing segments are scanned, a torn tail on the last
// segment is physically truncated, and the number of valid records on
// disk is returned (0 means a fresh log). When older segments have been
// deleted by TruncateBefore, the lifetime LSN is re-anchored from the
// self-referencing Ref of the last checkpoint marker, so LSNs stay stable
// across truncation and reopen.
func Open(dir string, opts Options) (*Log, uint64, error) {
	if dir == "" {
		return nil, 0, errors.New("wal: empty directory")
	}
	opts = opts.normalized()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, 0, err
	}
	l := &Log{dir: dir, opts: opts}
	segs, err := segmentFiles(dir)
	if err != nil {
		return nil, 0, err
	}
	if len(segs) == 0 {
		if err := l.createSegment(1); err != nil {
			return nil, 0, err
		}
		return l, 0, nil
	}
	var count uint64
	counts := make([]uint64, len(segs))
	idx, markerIdx, markerRef := 0, -1, uint64(0)
	for i, path := range segs {
		last := i == len(segs)-1
		n, validOff, _, err := scanSegment(path, last, func(r Record) {
			if r.Type == TypeCheckpoint {
				markerIdx, markerRef = idx, r.Ref
			}
			idx++
		})
		if err != nil {
			return nil, 0, err
		}
		count += n
		counts[i] = n
		if !last {
			continue
		}
		if err := os.Truncate(path, validOff); err != nil {
			return nil, 0, err
		}
		f, err := os.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			return nil, 0, err
		}
		if _, err := f.Seek(validOff, 0); err != nil {
			f.Close()
			return nil, 0, err
		}
		l.f = f
		l.seg = segIndex(path)
		l.size, l.flushed, l.synced = validOff, validOff, validOff
	}
	// Anchor absolute LSNs: the record at scan index j has LSN base+j+1,
	// where base is the number of records truncated away before the first
	// surviving segment. An untruncated log has base 0; a truncated one
	// always retains its checkpoint marker, whose Ref is its own LSN.
	var base uint64
	if markerIdx >= 0 {
		if markerRef < uint64(markerIdx)+1 {
			return nil, 0, fmt.Errorf("wal: checkpoint marker at index %d claims LSN %d", markerIdx, markerRef)
		}
		base = markerRef - uint64(markerIdx) - 1
	}
	cum := base
	for i, path := range segs {
		l.segs = append(l.segs, segMeta{idx: segIndex(path), first: cum + 1})
		cum += counts[i]
	}
	l.lsn = base + count
	return l, count, nil
}

// ReadAll scans every record of the log in dir without opening it for
// appending. A torn tail on the last segment is reported in ScanInfo and
// skipped; corruption anywhere else is an error.
func ReadAll(dir string) ([]Record, ScanInfo, error) {
	var info ScanInfo
	segs, err := segmentFiles(dir)
	if err != nil {
		return nil, info, err
	}
	if len(segs) == 0 {
		return nil, info, fmt.Errorf("wal: no log segments in %q", dir)
	}
	info.Segments = len(segs)
	var recs []Record
	for i, path := range segs {
		last := i == len(segs)-1
		n, _, torn, err := scanSegment(path, last, func(r Record) {
			recs = append(recs, r)
		})
		if err != nil {
			return nil, info, err
		}
		info.Records += int(n)
		if last {
			info.TornBytes = torn
		}
	}
	// Anchor absolute LSNs from the last checkpoint marker (see Open).
	var base uint64
	for j, r := range recs {
		if r.Type == TypeCheckpoint {
			if r.Ref < uint64(j)+1 {
				return nil, info, fmt.Errorf("wal: checkpoint marker at index %d claims LSN %d", j, r.Ref)
			}
			base = r.Ref - uint64(j) - 1
			info.CheckpointLSN = r.Ref
		}
	}
	if len(recs) > 0 {
		info.FirstLSN = base + 1
	}
	return recs, info, nil
}

// Append journals one record, returning its LSN (1-based, monotone across
// segments). Durability follows Options.SyncEvery.
func (l *Log) Append(rec Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(rec)
}

// AppendBatch journals the records contiguously (no interleaving with
// concurrent appenders) and returns the LSN of the first. The commit
// batches of the runtime use this so a commit record always directly
// follows its node and event records.
func (l *Log) AppendBatch(recs []Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var first uint64
	for i, rec := range recs {
		lsn, err := l.appendLocked(rec)
		if err != nil {
			return 0, err
		}
		if i == 0 {
			first = lsn
		}
	}
	return first, nil
}

// AppendCheckpoint journals one checkpoint batch contiguously: the store
// snapshot items (TypeCkItem) followed by the completing marker. The
// marker's Ref is backfilled with its own LSN before encoding — the
// checkpoint anchors itself, which is how Open and ReadAll restore
// absolute LSNs once TruncateBefore has deleted older segments. The batch
// is fsynced before returning: a checkpoint only exists once durable.
// Returns the marker's LSN.
func (l *Log) AppendCheckpoint(items []Record, marker Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, rec := range items {
		rec.Type = TypeCkItem
		if _, err := l.appendLocked(rec); err != nil {
			return 0, err
		}
	}
	marker.Type = TypeCheckpoint
	marker.Ref = l.lsn + 1
	lsn, err := l.appendLocked(marker)
	if err != nil {
		return 0, err
	}
	if err := l.syncLocked(); err != nil {
		return 0, err
	}
	return lsn, nil
}

// TruncateBefore deletes segments whose records are all older than lsn —
// i.e. wholly covered by a durable checkpoint at lsn. The segment holding
// lsn and everything after it survive, as does the current segment.
// Returns the number of segments deleted. LSNs are unaffected: they are
// re-anchored from the checkpoint marker on the next Open.
func (l *Log) TruncateBefore(lsn uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	deleted := 0
	for len(l.segs) > 1 && l.segs[0].idx != l.seg {
		// The first segment's last LSN is segs[1].first-1; delete it only
		// when that is still below lsn.
		if l.segs[1].first > lsn {
			break
		}
		path := filepath.Join(l.dir, segmentName(l.segs[0].idx))
		if err := os.Remove(path); err != nil {
			return deleted, err
		}
		l.segs = l.segs[1:]
		deleted++
	}
	if deleted > 0 {
		syncDir(l.dir)
	}
	return deleted, nil
}

func (l *Log) appendLocked(rec Record) (uint64, error) {
	lsn, err := l.appendRawLocked(rec)
	if err != nil {
		return 0, err
	}
	if l.opts.SyncEvery > 0 && l.sinceSyn >= l.opts.SyncEvery {
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	}
	return lsn, nil
}

// appendRawLocked frames the record into the buffer without applying the
// SyncEvery policy — Force uses it so the flush daemon, not the appender,
// pays the fsync.
func (l *Log) appendRawLocked(rec Record) (uint64, error) {
	if l.closed {
		return 0, ErrClosed
	}
	if l.size >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	n := len(l.buf)
	l.buf = appendFrame(l.buf, rec)
	l.size += int64(len(l.buf) - n)
	l.lsn++
	l.sinceSyn++
	return l.lsn, nil
}

// Force appends recs contiguously and returns a channel that receives
// exactly one error once the outcome is known: nil only after every
// appended record is durable (fsynced), non-nil if the append failed, the
// sync failed, or the log was closed/abandoned with the flush pending —
// never a false durability ack. The flush daemon coalesces all forces
// pending at flush time into one contiguous write + a single fsync, so N
// concurrent forcers share O(1) fsyncs. A nil or empty recs forces the
// log's current tail: the channel completes once everything appended so
// far is durable.
func (l *Log) Force(recs []Record) <-chan error {
	ch := make(chan error, 1)
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		ch <- ErrClosed
		return ch
	}
	for _, rec := range recs {
		if _, err := l.appendRawLocked(rec); err != nil {
			l.mu.Unlock()
			ch <- err
			return ch
		}
	}
	l.waiters = append(l.waiters, ch)
	l.pendingRecs += len(recs)
	l.gstats.Forces++
	l.gstats.ForcedRecords += uint64(len(recs))
	l.startDaemonLocked()
	urgent := l.opts.GroupWindow > 0 && l.pendingRecs >= l.opts.GroupMaxRecords
	kick, urgentc := l.kick, l.urgent
	l.mu.Unlock()
	if urgent {
		select {
		case urgentc <- struct{}{}:
		default:
		}
	}
	select {
	case kick <- struct{}{}:
	default:
	}
	return ch
}

// GroupStats reports the flush daemon's cumulative coalescing counters.
func (l *Log) GroupStats() GroupStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.gstats
}

func (l *Log) startDaemonLocked() {
	if l.daemonOn {
		return
	}
	l.daemonOn = true
	l.kick = make(chan struct{}, 1)
	l.urgent = make(chan struct{}, 1)
	l.stopc = make(chan struct{})
	l.daemonWG.Add(1)
	go l.flushDaemon()
}

// flushDaemon serves Force requests: each iteration optionally holds a
// GroupWindow open for more requests to join, then flushes one window.
// With GroupWindow == 0 the window is the duration of the previous fsync
// itself (natural batching).
func (l *Log) flushDaemon() {
	defer l.daemonWG.Done()
	for {
		select {
		case <-l.stopc:
			return
		case <-l.urgent:
		case <-l.kick:
			if w := l.opts.GroupWindow; w > 0 {
				t := time.NewTimer(w)
				select {
				case <-l.stopc:
					t.Stop()
					return
				case <-l.urgent:
					t.Stop()
				case <-t.C:
				}
			}
		}
		l.flushGroup()
	}
}

// flushGroup serves one window. The pending cohort is captured and its
// bytes written to the segment file under the mutex (cheap); the fsync
// runs with the mutex RELEASED, so concurrent forces keep appending and
// accumulate into the next window while the disk works — the pipelining
// that makes natural batching actually batch. After the fsync the cohort
// completes with the outcome, reconciled under the mutex against
// whatever raced with it:
//
//   - rotation closed the captured segment: rotateLocked fsyncs before it
//     closes, so the cohort was durable first and a Sync error on the dead
//     fd is ignored;
//   - Close fsynced and closed the fd: same reasoning, l.synced already
//     covers the cohort;
//   - Abandon truncated the unsynced tail: the cohort's records are gone
//     regardless of what our Sync returned, so the waiters get ErrClosed —
//     never a false durability ack.
func (l *Log) flushGroup() {
	l.mu.Lock()
	if l.closed || len(l.waiters) == 0 {
		l.mu.Unlock()
		return
	}
	waiters := l.waiters
	l.waiters = nil
	l.pendingRecs = 0
	l.gstats.Windows++
	if n := uint64(len(waiters)); n > l.gstats.MaxBatch {
		l.gstats.MaxBatch = n
	}
	err := l.flushLocked()
	f, seg, target := l.f, l.seg, l.flushed
	needSync := err == nil && l.synced < target
	l.mu.Unlock()

	if needSync {
		serr := f.Sync()
		l.mu.Lock()
		switch {
		case l.abandoned:
			err = ErrClosed
		case serr == nil:
			if l.seg == seg && target > l.synced {
				l.synced = target
			}
		case l.seg != seg || l.synced >= target:
			// Another sync path already made the cohort durable before our
			// Sync failed on the rotated-away or closed fd.
		default:
			err = serr
		}
		l.mu.Unlock()
	}
	for _, ch := range waiters {
		ch <- err
	}
}

// Sync flushes buffered frames and fsyncs the current segment.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

func (l *Log) flushLocked() error {
	if len(l.buf) == 0 {
		return nil
	}
	if _, err := l.f.Write(l.buf); err != nil {
		return err
	}
	l.flushed = l.size
	l.buf = l.buf[:0]
	return nil
}

// syncLocked flushes the whole buffer and fsyncs. Because the buffer is
// drained in append order, a successful sync makes every previously
// appended record durable — so all pending Force waiters complete here,
// whichever path triggered the sync (daemon window, SyncEvery, rotation,
// explicit Sync, Close). On failure the waiters get the error: durability
// is unknown, and recovery decides.
func (l *Log) syncLocked() error {
	err := l.doSyncLocked()
	if len(l.waiters) > 0 {
		for _, ch := range l.waiters {
			ch <- err
		}
		l.waiters = nil
		l.pendingRecs = 0
	}
	return err
}

func (l *Log) doSyncLocked() error {
	if err := l.flushLocked(); err != nil {
		return err
	}
	if l.synced == l.flushed {
		l.sinceSyn = 0
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.synced = l.flushed
	l.sinceSyn = 0
	return nil
}

func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	return l.createSegment(l.seg + 1)
}

func (l *Log) createSegment(idx int) error {
	path := filepath.Join(l.dir, segmentName(idx))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	syncDir(l.dir)
	l.f = f
	l.seg = idx
	l.buf = l.buf[:0]
	l.size, l.flushed, l.synced = int64(len(segMagic)), int64(len(segMagic)), int64(len(segMagic))
	l.segs = append(l.segs, segMeta{idx: idx, first: l.lsn + 1})
	return nil
}

// Close flushes, fsyncs and closes the log. Pending Force waiters
// complete through the final sync; the flush daemon is stopped.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	err := l.syncLocked()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.closed = true
	daemonOn := l.daemonOn
	if daemonOn {
		close(l.stopc)
	}
	l.mu.Unlock()
	if daemonOn {
		l.daemonWG.Wait()
	}
	return err
}

// Abandon simulates a process crash: buffered records that were never
// fsynced are dropped (the file is truncated back to the last durable
// offset — the loss window Options.SyncEvery opens), an optional torn
// frame prefix of rec is left at the tail (a write caught mid-page), and
// the log is closed. Every later Append returns ErrClosed. The returned
// error reports filesystem failures while staging the crash image — the
// simulated crash still happened, but the on-disk state may not match the
// intended loss window.
func (l *Log) Abandon(torn *Record) error {
	l.mu.Lock()
	defer func() {
		daemonOn := l.daemonOn
		l.mu.Unlock()
		if daemonOn {
			l.daemonWG.Wait()
		}
	}()
	if l.closed {
		return nil
	}
	l.closed = true
	l.abandoned = true
	l.buf = nil
	// A crash with a group flush pending: the records are gone, so the
	// waiters must see an error — never a false durability ack. A cohort
	// whose fsync is in flight right now (captured by flushGroup) is
	// failed by the daemon's abandoned check instead.
	for _, ch := range l.waiters {
		ch <- ErrClosed
	}
	l.waiters = nil
	l.pendingRecs = 0
	if l.daemonOn {
		close(l.stopc)
	}
	err := l.f.Truncate(l.synced)
	if torn != nil {
		frame := appendFrame(nil, *torn)
		cut := frameHeaderLen + (len(frame)-frameHeaderLen)/2
		if cut >= len(frame) {
			cut = len(frame) - 1
		}
		if _, werr := l.f.WriteAt(frame[:cut], l.synced); err == nil {
			err = werr
		}
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Records returns the number of records appended (or recovered at Open)
// over the log's lifetime.
func (l *Log) Records() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lsn
}

// scanSegment walks one segment, calling fn (when non-nil) per valid
// record. It returns the record count, the offset of the first invalid
// byte (= file size when the segment is fully valid), and the number of
// torn bytes. Invalid frames in a non-final segment are corruption.
func scanSegment(path string, last bool, fn func(Record)) (records uint64, validOff int64, tornBytes int64, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, 0, err
	}
	if len(raw) < len(segMagic) || string(raw[:len(segMagic)]) != segMagic {
		if last {
			// A crash during segment creation can leave a partial header;
			// the whole file is a torn tail.
			return 0, 0, int64(len(raw)), nil
		}
		return 0, 0, 0, fmt.Errorf("wal: %s: bad segment header", path)
	}
	off := int64(len(segMagic))
	for {
		rem := int64(len(raw)) - off
		if rem == 0 {
			return records, off, 0, nil
		}
		torn := false
		var frameLen int64
		if rem < frameHeaderLen {
			torn = true
		} else {
			ln := binary.LittleEndian.Uint32(raw[off:])
			crc := binary.LittleEndian.Uint32(raw[off+4:])
			if ln > maxRecordBytes || int64(frameHeaderLen)+int64(ln) > rem {
				torn = true
			} else {
				body := raw[off+frameHeaderLen : off+frameHeaderLen+int64(ln)]
				if crc32.ChecksumIEEE(body) != crc {
					torn = true
				} else {
					rec, derr := decodeBody(body)
					if derr != nil {
						return 0, 0, 0, fmt.Errorf("wal: %s at offset %d: %w", path, off, derr)
					}
					if fn != nil {
						fn(rec)
					}
					records++
					frameLen = int64(frameHeaderLen) + int64(ln)
				}
			}
		}
		if torn {
			if !last {
				return 0, 0, 0, fmt.Errorf("wal: %s: corrupt record at offset %d in non-final segment", path, off)
			}
			return records, off, rem, nil
		}
		off += frameLen
	}
}

func segmentName(idx int) string { return fmt.Sprintf("%08d.seg", idx) }

func segIndex(path string) int {
	base := strings.TrimSuffix(filepath.Base(path), ".seg")
	n := 0
	fmt.Sscanf(base, "%d", &n)
	return n
}

func segmentFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("wal: no log at %q", dir)
		}
		return nil, err
	}
	var out []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".seg") {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(out)
	return out, nil
}

// syncDir fsyncs a directory so a freshly created segment file survives a
// crash of the directory entry itself. Best effort: some filesystems
// reject directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
