package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// Checkpoint/truncation suite: the self-anchoring marker must keep
// absolute LSNs stable across TruncateBefore and reopen, and ReadAll must
// report where the durable history now starts.

// ckItems builds a small store snapshot batch.
func ckItems(n int) []Record {
	items := make([]Record, n)
	for i := range items {
		items[i] = Record{Comp: "bank", Item: fmt.Sprintf("k%d", i), Prev: int64(i * 10)}
	}
	return items
}

func segCount(t *testing.T, dir string) int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".seg" {
			n++
		}
	}
	return n
}

// TestAppendCheckpointSelfAnchors checks the marker's Ref is its own LSN
// and that ReadAll reports it.
func TestAppendCheckpointSelfAnchors(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range sampleRecords(9) {
		if _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	lsn, err := l.AppendCheckpoint(ckItems(3), Record{Meta: []byte(`{"seq":9}`)})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 13 { // 9 records + 3 items + the marker
		t.Fatalf("marker LSN = %d, want 13", lsn)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, info, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.FirstLSN != 1 || info.CheckpointLSN != 13 {
		t.Fatalf("scan info %+v, want FirstLSN 1, CheckpointLSN 13", info)
	}
	marker := recs[len(recs)-1]
	if marker.Type != TypeCheckpoint || marker.Ref != 13 {
		t.Fatalf("marker = %+v, want TypeCheckpoint with Ref 13", marker)
	}
	for i, rec := range recs[9:12] {
		if rec.Type != TypeCkItem || rec.Item != fmt.Sprintf("k%d", i) {
			t.Fatalf("ck-item %d = %+v", i, rec)
		}
	}
}

// TestTruncateBeforeKeepsLSNs rotates through several segments, takes a
// checkpoint, truncates, and checks (a) old segments are deleted, (b) the
// surviving records keep their absolute LSNs across reopen, (c) appends
// continue the sequence.
func TestTruncateBeforeKeepsLSNs(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments so every few records rotate.
	l, _, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range sampleRecords(40) {
		if _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	before := segCount(t, dir)
	if before < 3 {
		t.Fatalf("only %d segments; the rotation premise failed", before)
	}
	ckLSN, err := l.AppendCheckpoint(ckItems(2), Record{Meta: []byte(`{}`)})
	if err != nil {
		t.Fatal(err)
	}
	if ckLSN != 43 {
		t.Fatalf("marker LSN = %d, want 43", ckLSN)
	}
	deleted, err := l.TruncateBefore(41) // the batch's first LSN
	if err != nil {
		t.Fatal(err)
	}
	if deleted == 0 {
		t.Fatal("TruncateBefore deleted nothing despite rotated segments")
	}
	if got := segCount(t, dir); got != before-deleted+1 { // +1: checkpoint landed in a fresh-ish tail
		// The exact count depends on where rotation fell; just require it shrank.
		if got >= before {
			t.Fatalf("segment count %d did not shrink from %d", got, before)
		}
	}
	// Post-truncation appends keep the absolute sequence.
	lsn, err := l.Append(Record{Type: TypeCommit, Txn: "T-post"})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 44 {
		t.Fatalf("post-truncation LSN = %d, want 44", lsn)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// ReadAll re-anchors from the marker.
	recs, info, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.CheckpointLSN != 43 {
		t.Fatalf("CheckpointLSN = %d, want 43", info.CheckpointLSN)
	}
	if info.FirstLSN == 0 || info.FirstLSN == 1 {
		t.Fatalf("FirstLSN = %d: truncation must move the start of history", info.FirstLSN)
	}
	if got := info.FirstLSN + uint64(len(recs)) - 1; got != 44 {
		t.Fatalf("last LSN = %d, want 44", got)
	}

	// Reopen re-anchors too: the next append continues at 45.
	l2, existing, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if existing != uint64(len(recs)) {
		t.Fatalf("reopen reports %d records on disk, scan saw %d", existing, len(recs))
	}
	lsn, err = l2.Append(Record{Type: TypeCommit, Txn: "T-reopen"})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 45 {
		t.Fatalf("post-reopen LSN = %d, want 45", lsn)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTruncateBeforeConservative checks the barrier semantics: a segment
// survives unless every record in it is strictly below the cut, and the
// current segment always survives.
func TestTruncateBeforeConservative(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range sampleRecords(40) {
		if _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	// A barrier at LSN 1 protects everything.
	if n, err := l.TruncateBefore(1); err != nil || n != 0 {
		t.Fatalf("TruncateBefore(1) = (%d, %v), want (0, nil)", n, err)
	}
	before := segCount(t, dir)
	// A barrier past the end may delete everything but the current segment.
	if _, err := l.TruncateBefore(1000); err != nil {
		t.Fatal(err)
	}
	if got := segCount(t, dir); got != 1 {
		t.Fatalf("%d segments survive a total truncation, want 1 (was %d)", got, before)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestIncompleteCheckpointIgnored leaves trailing ck-items with no marker
// (a crash mid-checkpoint) and checks ReadAll does not move CheckpointLSN.
func TestIncompleteCheckpointIgnored(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range sampleRecords(5) {
		if _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	first, err := l.AppendCheckpoint(ckItems(2), Record{Meta: []byte(`{}`)})
	if err != nil {
		t.Fatal(err)
	}
	// Second checkpoint crashes after its items, before its marker.
	for _, rec := range ckItems(2) {
		rec.Type = TypeCkItem
		if _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, info, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.CheckpointLSN != first {
		t.Fatalf("CheckpointLSN = %d, want the last complete marker %d", info.CheckpointLSN, first)
	}
}
