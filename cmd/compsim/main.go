// Command compsim runs the prototype composite-system runtime on a chosen
// topology and protocol, prints throughput metrics, and checks the
// recorded execution for composite correctness.
//
// Usage:
//
//	compsim -topology bank -protocol hybrid -roots 500 -clients 16
//
// With -wal the runtime journals through a durable write-ahead log; a run
// killed by a crash fault (-crash, or a "crash=p" fault site) exits with
// status 3 and can be recovered — torn tail truncated, in-flight work
// undone, committed work redone and re-verified — with -recover:
//
//	compsim -topology bank -wal /tmp/bank.wal -crash T13:commit
//	compsim -recover /tmp/bank.wal
//
// With -checkpoint-every N the runtime stays bounded over long runs:
// every N commits it folds the certified history, prunes the recorder,
// compacts MVCC version chains and truncates the WAL behind the live
// barrier, so recovery replays only the tail since the last marker:
//
//	compsim -topology bank -roots 5000 -certify -wal /tmp/bank.wal -checkpoint-every 50
//
// With -distributed the same workload runs on a root coordinator plus
// one participant scheduler per component, over an in-process channel or
// TCP loopback transport, with presumed-abort 2PC deciding every root.
// -net-faults injects seeded message chaos, -dist-crash kills either
// side at a 2PC crash window (exit status 3), and -recover on the WAL
// root rebuilds the whole cluster, drains the in-doubt set and
// re-verifies the merged history:
//
//	compsim -distributed -topology bank -wal /tmp/bank.d -net-faults drop=0.03,dup=0.08 -dist-crash T5:coord-post-decision
//	compsim -recover /tmp/bank.d
//
// With -group-commit a distributed run coalesces every 2PC force point
// (participant prepares and decisions, coordinator decisions) through the
// WAL flush daemon, so concurrent transactions share one fsync per flush
// window instead of paying one each. -dist-conc N runs the sustained
// throughput comparison directly: N concurrent clients on disjoint
// account pairs, per-transaction fsync vs. group commit, with tps,
// client-observed p50/p99 latency and the speedup:
//
//	compsim -dist-conc 64 -roots 1600
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	ctx "compositetx"
)

// stopProfiles finishes -cpuprofile/-memprofile collection; a no-op until
// startProfiles installs the real hook. exit routes every post-profiling
// termination through it (os.Exit skips defers).
var stopProfiles = func() {}

func exit(code int) {
	stopProfiles()
	os.Exit(code)
}

// startProfiles wires the -cpuprofile/-memprofile flags: CPU profiling
// starts now, the heap profile is captured when stopProfiles runs.
func startProfiles(cpu, mem string) {
	var cpuF *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			fmt.Fprintf(os.Stderr, "compsim: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "compsim: %v\n", err)
			os.Exit(2)
		}
		cpuF = f
	}
	stopProfiles = func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintf(os.Stderr, "compsim: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "compsim: %v\n", err)
			}
			f.Close()
		}
	}
}

// parseFaults turns "apply=0.02,lock-delay=0.05,crash=0.01" into a
// FaultPlan (site names match FaultSite.String; values are per-visit
// probabilities).
func parseFaults(spec string, seed int64) (ctx.FaultPlan, error) {
	plan := ctx.FaultPlan{Seed: seed}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return plan, fmt.Errorf("bad fault spec %q (want site=prob)", kv)
		}
		p, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return plan, fmt.Errorf("bad fault probability %q: %v", v, err)
		}
		switch k {
		case "apply":
			plan.ApplyProb = p
		case "lock-delay":
			plan.LockDelayProb = p
		case "lock-fail":
			plan.LockFailProb = p
		case "compensation":
			plan.CompensationProb = p
		case "down":
			plan.DownProb = p
		case "crash":
			plan.CrashProb = p
		default:
			return plan, fmt.Errorf("unknown fault site %q (apply|lock-delay|lock-fail|compensation|down|crash)", k)
		}
	}
	return plan, nil
}

// parseCrash turns a deterministic crash spec into a trigger: a leaf node
// ID ("T13/2/1", transaction inferred from the prefix), or
// "T13:commit" / "T13:post-commit" for the commit-protocol sites.
func parseCrash(spec string) (ctx.Trigger, error) {
	trig := ctx.Trigger{Site: ctx.FaultCrash}
	if txn, site, ok := strings.Cut(spec, ":"); ok {
		if site != "commit" && site != "post-commit" {
			return trig, fmt.Errorf("bad crash site %q (want commit|post-commit)", site)
		}
		trig.Txn, trig.Step = txn, site
		return trig, nil
	}
	txn, _, ok := strings.Cut(spec, "/")
	if !ok {
		return trig, fmt.Errorf("bad crash spec %q (want a leaf node ID like T13/2/1, or T13:commit)", spec)
	}
	trig.Txn, trig.Step = txn, spec
	return trig, nil
}

// parseNetFaults turns "drop=0.03,dup=0.08,delay=0.1,reorder=0.05,
// partition=0.01" into a NetFaultPlan (probabilities are per-message;
// delay-mean and partition-window tune the fault durations).
func parseNetFaults(spec string, seed int64) (ctx.NetFaultPlan, error) {
	plan := ctx.NetFaultPlan{Seed: seed}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return plan, fmt.Errorf("bad net-fault spec %q (want fault=value)", kv)
		}
		switch k {
		case "delay-mean", "partition-window":
			d, err := time.ParseDuration(v)
			if err != nil {
				return plan, fmt.Errorf("bad duration %q: %v", v, err)
			}
			if k == "delay-mean" {
				plan.Delay = d
			} else {
				plan.PartitionWindow = d
			}
			continue
		case "seed":
			s, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return plan, fmt.Errorf("bad seed %q: %v", v, err)
			}
			plan.Seed = s
			continue
		}
		p, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return plan, fmt.Errorf("bad fault probability %q: %v", v, err)
		}
		switch k {
		case "drop":
			plan.DropProb = p
		case "dup":
			plan.DupProb = p
		case "delay":
			plan.DelayProb = p
		case "reorder":
			plan.ReorderProb = p
		case "partition":
			plan.PartitionProb = p
		default:
			return plan, fmt.Errorf("unknown net fault %q (drop|dup|delay|reorder|partition|delay-mean|partition-window|seed)", k)
		}
	}
	return plan, nil
}

// parseDistCrash turns "T5:coord-pre-decision" or "T5:part-prepare:east"
// into a distributed crash-site injection.
func parseDistCrash(spec string) (ctx.DistCrash, error) {
	fields := strings.Split(spec, ":")
	if len(fields) < 2 || len(fields) > 3 {
		return ctx.DistCrash{}, fmt.Errorf("bad dist-crash spec %q (want txn:site[:participant])", spec)
	}
	d := ctx.DistCrash{Txn: fields[0], Site: fields[1]}
	if len(fields) == 3 {
		d.Part = fields[2]
	}
	switch d.Site {
	case ctx.DistCrashCoordPre, ctx.DistCrashCoordPost:
	case ctx.DistCrashPartPrepare, ctx.DistCrashPartDecide:
	default:
		return ctx.DistCrash{}, fmt.Errorf("unknown dist-crash site %q (%s|%s|%s|%s)", d.Site,
			ctx.DistCrashCoordPre, ctx.DistCrashCoordPost, ctx.DistCrashPartPrepare, ctx.DistCrashPartDecide)
	}
	return d, nil
}

// runRecover is the -recover mode: rebuild a runtime from a WAL
// directory and report what recovery found. A directory with a coord/
// sub-log is a distributed durability root and recovers as a cluster.
func runRecover(dir, transport string, rpcTimeout time.Duration) {
	if st, err := os.Stat(filepath.Join(dir, "coord")); err == nil && st.IsDir() {
		runRecoverDist(dir, transport, rpcTimeout)
		return
	}
	rec, err := ctx.Recover(ctx.WALConfig{Dir: dir})
	if rec == nil {
		fmt.Fprintf(os.Stderr, "compsim: %v\n", err)
		exit(2)
	}
	s := rec.Stats
	fmt.Printf("recovered wal=%s segments=%d records=%d torn-bytes=%d\n", dir, s.Segments, s.Records, s.TornBytes)
	fmt.Printf("txns committed=%d aborted=%d in-flight=%d redone=%d undone=%d quarantined=%d\n",
		s.Committed, s.Aborted, s.InFlight, s.Redone, s.Undone, s.Quarantined)
	for _, q := range rec.Runtime.Quarantined() {
		fmt.Printf("quarantine: component=%s txn=%s op=%s err=%v\n", q.Component, q.Txn, q.Op, q.Err)
	}
	fmt.Printf("recovered execution: %s\n", rec.Verdict)
	if err != nil {
		fmt.Fprintf(os.Stderr, "compsim: %v\n", err)
		exit(1)
	}
}

// runRecoverDist rebuilds a whole distributed cluster from its
// durability root, lets the termination protocol and decision
// re-delivery drain the in-doubt set, and re-verifies the merged
// committed history.
func runRecoverDist(root, transport string, rpcTimeout time.Duration) {
	cl, err := ctx.RecoverCluster(ctx.DistConfig{
		WALRoot: root, Transport: transport, RPCTimeout: rpcTimeout,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "compsim: %v\n", err)
		exit(2)
	}
	defer cl.Close()
	if err := cl.Settle(15 * time.Second); err != nil {
		fmt.Fprintf(os.Stderr, "compsim: %v\n", err)
		exit(1)
	}
	fmt.Printf("recovered cluster root=%s transport=%s\n", root, transport)
	fmt.Println(cl.Metrics().String())
	v, err := cl.Audit()
	if err != nil {
		fmt.Fprintf(os.Stderr, "compsim: %v\n", err)
		exit(2)
	}
	fmt.Printf("recovered execution: %s\n", v)
	if !v.Correct {
		exit(1)
	}
}

// runDistributed is the -distributed mode: the same topology, protocol
// and workload flags, but executed by a coordinator + per-component
// participant cluster over a message transport, with presumed-abort 2PC
// deciding every root. Crash faults follow the single-process exit
// convention: status 3, recover with -recover on the WAL root.
func runDistributed(topoName string, topo *ctx.Topology, proto ctx.Protocol, cfg ctx.DistConfig,
	crashSpec string, roots, steps, items, clients int, readRatio, writeRatio float64, seed int64) {
	cl, err := ctx.StartCluster(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "compsim: %v\n", err)
		exit(2)
	}
	defer cl.Close()
	if crashSpec != "" {
		d, err := parseDistCrash(crashSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "compsim: %v\n", err)
			exit(2)
		}
		cl.SetCrash(d)
	}

	programs := ctx.GenPrograms(topo, ctx.WorkloadParams{
		Roots: roots, StepsPerTx: steps, Items: items,
		ReadRatio: readRatio, WriteRatio: writeRatio, Seed: seed,
	})
	crashed := func() bool {
		return cl.CoordinatorCrashed() || len(cl.CrashedParticipants()) > 0
	}
	var firstErr atomic.Value
	start := time.Now()
	work := make(chan int)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				_, err := cl.Submit(fmt.Sprintf("T%d", i+1), programs[i])
				if err != nil && !errors.Is(err, ctx.ErrCrashed) && !crashed() {
					firstErr.CompareAndSwap(nil, err)
				}
			}
		}()
	}
	for i := range programs {
		if crashed() {
			break
		}
		work <- i
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("topology=%s protocol=%s roots=%d clients=%d transport=%s distributed=true\n",
		topoName, proto, roots, clients, cfg.Transport)
	if crashed() {
		node := "coordinator"
		if ps := cl.CrashedParticipants(); len(ps) > 0 {
			node = "participant " + strings.Join(ps, ",")
		}
		fmt.Println(cl.Metrics().String())
		fmt.Printf("crashed: %s killed by a crash fault; the logs under %s survived\n", node, cfg.WALRoot)
		fmt.Printf("recover with: compsim -recover %s\n", cfg.WALRoot)
		exit(3)
	}
	if e, _ := firstErr.Load().(error); e != nil {
		fmt.Fprintf(os.Stderr, "compsim: %v\n", e)
		exit(1)
	}
	if err := cl.Settle(15 * time.Second); err != nil {
		fmt.Fprintf(os.Stderr, "compsim: %v\n", err)
		exit(1)
	}
	m := cl.Metrics()
	fmt.Printf("wall=%s throughput=%.0f tx/s\n", elapsed.Round(time.Millisecond), float64(m.Commits)/elapsed.Seconds())
	fmt.Println(m.String())
	v, err := cl.Audit()
	if err != nil {
		fmt.Fprintf(os.Stderr, "compsim: %v\n", err)
		exit(2)
	}
	fmt.Printf("recorded execution: %s\n", v)
	if !v.Correct {
		exit(1)
	}
}

// distPerfSeed seeds every -dist-conc account; transfers move 1 per leg,
// so a run never exhausts an account.
const distPerfSeed = int64(1 << 20)

// latPercentile picks the q-quantile of the observed latencies.
func latPercentile(lat []time.Duration, q float64) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[int(q*float64(len(s)-1))]
}

// runDistPerf is the -dist-conc mode: the sustained distributed commit
// throughput comparison at one concurrency level. conc clients each
// transfer on their own disjoint east/west account pair (so lock
// contention cannot mask fsync cost), once with a per-transaction fsync
// at every 2PC force point and once with the force points coalesced
// through the WAL flush daemon. Both runs must conserve value on every
// account pair and pass the Comp-C audit.
func runDistPerf(transport string, conc, roots int, walDir string) {
	perClient := roots / conc
	if perClient < 1 {
		perClient = 1
	}
	dir := walDir
	if dir == "" {
		d, err := os.MkdirTemp("", "compsim-distperf-*")
		if err != nil {
			fmt.Fprintf(os.Stderr, "compsim: %v\n", err)
			exit(2)
		}
		defer os.RemoveAll(d)
		dir = d
	}

	run := func(group bool, sub string) float64 {
		seeds := map[string]int64{}
		for c := 0; c < conc; c++ {
			seeds[fmt.Sprintf("a%d", c)] = distPerfSeed
		}
		cl, err := ctx.StartCluster(ctx.DistConfig{
			Protocol: ctx.Hybrid, Topo: ctx.BankTopology(),
			Transport: transport,
			WALRoot:   filepath.Join(dir, sub), SyncEvery: 64,
			RPCTimeout: 250 * time.Millisecond, RPCRetries: 3,
			LockWait: 500 * time.Millisecond, MaxRetries: 30,
			AbandonAfter: 10 * time.Second, QueryAfter: 2 * time.Second,
			SweepEvery:  time.Second,
			Seeds:       map[string]map[string]int64{"east": seeds},
			GroupCommit: group,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "compsim: %v\n", err)
			exit(2)
		}
		defer cl.Close()

		var (
			mu      sync.Mutex
			lat     = make([]time.Duration, 0, conc*perClient)
			firstEr atomic.Value
			wg      sync.WaitGroup
		)
		start := time.Now()
		for c := 0; c < conc; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				item := fmt.Sprintf("a%d", c)
				mine := make([]time.Duration, 0, perClient)
				for i := 0; i < perClient; i++ {
					prog := ctx.Invocation{Component: "bank", Steps: []ctx.Step{
						{Invoke: &ctx.Invocation{Component: "east", Item: item, Mode: ctx.ModeIncr,
							Steps: []ctx.Step{{Op: &ctx.Op{Mode: ctx.ModeIncr, Item: item, Arg: -1}}}}},
						{Invoke: &ctx.Invocation{Component: "west", Item: item, Mode: ctx.ModeIncr,
							Steps: []ctx.Step{{Op: &ctx.Op{Mode: ctx.ModeIncr, Item: item, Arg: 1}}}}},
					}}
					t0 := time.Now()
					if _, err := cl.Submit(fmt.Sprintf("C%d-%d", c, i), prog); err != nil {
						firstEr.CompareAndSwap(nil, fmt.Errorf("client %d txn %d: %w", c, i, err))
						return
					}
					mine = append(mine, time.Since(t0))
				}
				mu.Lock()
				lat = append(lat, mine...)
				mu.Unlock()
			}(c)
		}
		wg.Wait()
		elapsed := time.Since(start)
		if e, _ := firstEr.Load().(error); e != nil {
			fmt.Fprintf(os.Stderr, "compsim: %v\n", e)
			exit(1)
		}
		if err := cl.Settle(10 * time.Second); err != nil {
			fmt.Fprintf(os.Stderr, "compsim: %v\n", err)
			exit(1)
		}

		m := cl.Metrics()
		tps := float64(m.Commits) / elapsed.Seconds()
		mode := "per-txn-fsync"
		if group {
			mode = "group-commit"
		}
		fmt.Printf("%-13s %7.0f tx/s  p50=%-9s p99=%-9s committed=%d\n",
			mode, tps,
			latPercentile(lat, 0.50).Round(time.Microsecond),
			latPercentile(lat, 0.99).Round(time.Microsecond),
			m.Commits)
		fmt.Println("  " + m.String())

		east, west := cl.StoreSnapshot("east"), cl.StoreSnapshot("west")
		conserved := int(m.Commits) == conc*perClient
		for c := 0; c < conc; c++ {
			item := fmt.Sprintf("a%d", c)
			if east[item]+west[item] != distPerfSeed || west[item] != int64(perClient) {
				conserved = false
			}
		}
		if !conserved {
			fmt.Printf("  conservation: VIOLATED\n")
			exit(1)
		}
		v, err := cl.Audit()
		if err != nil {
			fmt.Fprintf(os.Stderr, "compsim: %v\n", err)
			exit(2)
		}
		fmt.Printf("  conserved; recorded execution: %s\n", v)
		if !v.Correct {
			exit(1)
		}
		return tps
	}

	fmt.Printf("topology=bank protocol=hybrid transport=%s conc=%d per-client=%d distributed=true\n",
		transport, conc, perClient)
	base := run(false, "per-txn")
	grouped := run(true, "group")
	fmt.Printf("group-commit speedup: %.2fx\n", grouped/base)
}

func main() {
	topoName := flag.String("topology", "bank", "stack2|stack3|stack4|bank|diamond")
	topoFile := flag.String("topo-file", "", "load a custom topology from a JSON file (overrides -topology)")
	protoName := flag.String("protocol", "hybrid", "open-nested|closed-nested|global-2pl|hybrid|nocc")
	roots := flag.Int("roots", 500, "number of root transactions")
	steps := flag.Int("steps", 4, "steps per transaction")
	items := flag.Int("items", 6, "hot-item universe size")
	clients := flag.Int("clients", 16, "concurrent client goroutines")
	readRatio := flag.Float64("reads", 0.3, "read service ratio")
	writeRatio := flag.Float64("writes", 0.2, "write service ratio (rest: increments)")
	seed := flag.Int64("seed", 1, "workload seed")
	deadlock := flag.String("deadlock", "wait-die", "deadlock policy: wait-die|detect-wfg")
	faults := flag.String("faults", "", "fault injection, e.g. apply=0.02,lock-delay=0.05,down=0.01")
	faultSeed := flag.Int64("fault-seed", 1, "fault injector seed")
	opTimeout := flag.Duration("op-timeout", 0, "per-attempt deadline (0 = none), e.g. 25ms")
	walDir := flag.String("wal", "", "journal through a durable write-ahead log in this directory")
	walSync := flag.Int("wal-sync", 1, "fsync every N WAL records (<=1: every record, <0: never)")
	crash := flag.String("crash", "", `deterministic crash trigger: a leaf node ID ("T13/2/1") or "T13:commit"/"T13:post-commit" (requires -wal)`)
	crashTear := flag.Bool("crash-tear", false, "tear the WAL record mid-append when the crash fires")
	recoverDir := flag.String("recover", "", "recover from a WAL directory (single-process or a distributed root), report, and exit")
	distributed := flag.Bool("distributed", false, "run a coordinator + per-component participant cluster (presumed-abort 2PC) instead of the single-process runtime")
	transport := flag.String("transport", "chan", "distributed message transport: chan|tcp")
	netFaults := flag.String("net-faults", "", "seeded network fault injection, e.g. drop=0.03,dup=0.08,delay=0.1,reorder=0.05,partition=0.01 (requires -distributed)")
	rpcTimeout := flag.Duration("rpc-timeout", 0, "distributed per-attempt RPC deadline (0 = default 25ms)")
	distCrash := flag.String("dist-crash", "", `distributed crash trigger "txn:site[:participant]", e.g. T5:coord-post-decision or T5:part-prepare:east (requires -distributed and -wal)`)
	groupCommit := flag.Bool("group-commit", false, "coalesce 2PC force points through the WAL flush daemon: one shared fsync per flush window instead of one per force (requires -distributed)")
	distConc := flag.Int("dist-conc", 0, "sustained distributed-throughput comparison at N concurrent clients on disjoint account pairs: per-txn fsync vs. group commit, tps + p50/p99 (implies -distributed on the bank topology; -roots sets total transfers)")
	certify := flag.Bool("certify", false, "certify every commit online against Comp-C and reject violating ones")
	certFastPath := flag.Bool("cert-fastpath", true, "absorb footprint-disjoint commits past the certifier engine (requires -certify; disable to force every commit through full admission)")
	certSerial := flag.Bool("cert-serial", false, "run the pre-pipeline serial certifier: delta build and admission inline under the global commit lock (requires -certify)")
	checkpointEvery := flag.Int("checkpoint-every", 0, "checkpoint every N commits: fold certified history, prune the recorder, compact MVCC chains, truncate the WAL (0 = never)")
	optimistic := flag.Bool("optimistic", false, "serve leaf reads from MVCC snapshots and validate them at commit instead of taking semantic read locks")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	startProfiles(*cpuProfile, *memProfile)
	defer stopProfiles()

	if *recoverDir != "" {
		runRecover(*recoverDir, *transport, *rpcTimeout)
		stopProfiles()
		return
	}

	topos := map[string]*ctx.Topology{
		"stack2":  ctx.StackTopology(2),
		"stack3":  ctx.StackTopology(3),
		"stack4":  ctx.StackTopology(4),
		"bank":    ctx.BankTopology(),
		"diamond": ctx.DiamondTopology(),
	}
	topo, ok := topos[*topoName]
	if *topoFile != "" {
		f, err := os.Open(*topoFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "compsim: %v\n", err)
			exit(2)
		}
		topo, err = ctx.DecodeTopology(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "compsim: %v\n", err)
			exit(2)
		}
		*topoName = *topoFile
	} else if !ok {
		fmt.Fprintf(os.Stderr, "compsim: unknown topology %q\n", *topoName)
		exit(2)
	}
	protos := map[string]ctx.Protocol{
		"open-nested":   ctx.OpenNested,
		"closed-nested": ctx.ClosedNested,
		"global-2pl":    ctx.Global2PL,
		"hybrid":        ctx.Hybrid,
		"nocc":          ctx.NoCC,
	}
	proto, ok := protos[*protoName]
	if !ok {
		fmt.Fprintf(os.Stderr, "compsim: unknown protocol %q\n", *protoName)
		exit(2)
	}

	if *distConc > 0 {
		runDistPerf(*transport, *distConc, *roots, *walDir)
		stopProfiles()
		return
	}
	if *distributed {
		netPlan, err := parseNetFaults(*netFaults, *faultSeed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "compsim: %v\n", err)
			exit(2)
		}
		if *distCrash != "" && *walDir == "" {
			fmt.Fprintln(os.Stderr, "compsim: -dist-crash needs -wal (nothing would survive to recover)")
			exit(2)
		}
		runDistributed(*topoName, topo, proto, ctx.DistConfig{
			Protocol: proto, Topo: topo, Transport: *transport,
			NetFaults: netPlan, WALRoot: *walDir, SyncEvery: *walSync,
			RPCTimeout: *rpcTimeout, GroupCommit: *groupCommit,
		}, *distCrash, *roots, *steps, *items, *clients, *readRatio, *writeRatio, *seed)
		stopProfiles()
		return
	}
	if *netFaults != "" || *distCrash != "" || *groupCommit {
		fmt.Fprintln(os.Stderr, "compsim: -net-faults, -dist-crash and -group-commit need -distributed")
		exit(2)
	}

	rt := topo.NewRuntime(proto)
	switch *deadlock {
	case "wait-die":
		rt.Deadlock = ctx.WaitDie
	case "detect-wfg":
		rt.Deadlock = ctx.DetectWFG
	default:
		fmt.Fprintf(os.Stderr, "compsim: unknown deadlock policy %q\n", *deadlock)
		exit(2)
	}
	rt.OpTimeout = *opTimeout
	if *optimistic {
		rt.Exec = ctx.ExecOptimistic
	}
	if *certify {
		rt.CertOpts = ctx.CertifyOptions{Serial: *certSerial, NoFastPath: !*certFastPath}
		if err := rt.EnableCertify(); err != nil {
			fmt.Fprintf(os.Stderr, "compsim: %v\n", err)
			exit(2)
		}
	}
	if *walDir != "" {
		if err := rt.EnableWAL(ctx.WALConfig{Dir: *walDir, SyncEvery: *walSync}); err != nil {
			fmt.Fprintf(os.Stderr, "compsim: %v\n", err)
			exit(2)
		}
	}
	if *checkpointEvery > 0 {
		rt.EnableCheckpoints(ctx.CheckpointConfig{Every: *checkpointEvery})
	}
	plan, err := parseFaults(*faults, *faultSeed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "compsim: %v\n", err)
		exit(2)
	}
	if *crash != "" {
		trig, err := parseCrash(*crash)
		if err != nil {
			fmt.Fprintf(os.Stderr, "compsim: %v\n", err)
			exit(2)
		}
		plan.Triggers = append(plan.Triggers, trig)
	}
	plan.CrashTear = *crashTear
	if (*crash != "" || plan.CrashProb > 0) && *walDir == "" {
		fmt.Fprintln(os.Stderr, "compsim: crash faults need -wal (nothing would survive to recover)")
		exit(2)
	}
	if *faults != "" || *crash != "" {
		rt.SetFaults(plan)
	}
	programs := ctx.GenPrograms(topo, ctx.WorkloadParams{
		Roots: *roots, StepsPerTx: *steps, Items: *items,
		ReadRatio: *readRatio, WriteRatio: *writeRatio, Seed: *seed,
	})
	start := time.Now()
	runErr := ctx.Run(rt, programs, *clients)
	elapsed := time.Since(start)
	m := rt.Metrics()
	fmt.Printf("topology=%s protocol=%s roots=%d clients=%d\n", *topoName, proto, *roots, *clients)
	if errors.Is(runErr, ctx.ErrCrashed) {
		fmt.Println(m.String())
		fmt.Printf("crashed: runtime killed by a crash fault; the WAL at %s survived\n", *walDir)
		fmt.Printf("recover with: compsim -recover %s\n", *walDir)
		exit(3)
	}
	if errors.Is(runErr, ctx.ErrCertifyViolation) {
		// The certifier did its job: the violating commit was rejected and
		// rolled back, and the committed history below stays Comp-C.
		var cerr *ctx.CertifyError
		if errors.As(runErr, &cerr) {
			fmt.Printf("certify: rejected %s at commit time: %s\n", cerr.Root, cerr.Verdict.Reason)
		} else {
			fmt.Printf("certify: rejected a commit: %v\n", runErr)
		}
		runErr = nil
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "compsim: %v\n", runErr)
		exit(1)
	}
	if *walDir != "" {
		if err := rt.CloseWAL(); err != nil {
			fmt.Fprintf(os.Stderr, "compsim: %v\n", err)
			exit(1)
		}
	}
	fmt.Printf("wall=%s throughput=%.0f tx/s\n", elapsed.Round(time.Millisecond), float64(m.Commits)/elapsed.Seconds())
	fmt.Println(m.String())
	if *faults != "" || *opTimeout > 0 {
		for _, q := range rt.Quarantined() {
			fmt.Printf("quarantine: component=%s txn=%s op=%s err=%v\n", q.Component, q.Txn, q.Op, q.Err)
		}
	}

	sys := rt.RecordedSystem()
	if err := sys.Validate(); err != nil {
		fmt.Printf("recorded execution: MODEL VIOLATION (%v)\n", err)
		exit(1)
	}
	v, err := ctx.Check(sys, ctx.CheckOptions{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "compsim: %v\n", err)
		exit(2)
	}
	fmt.Printf("recorded execution: %s\n", v)
	if !v.Correct {
		exit(1)
	}
}
