// Command compsim runs the prototype composite-system runtime on a chosen
// topology and protocol, prints throughput metrics, and checks the
// recorded execution for composite correctness.
//
// Usage:
//
//	compsim -topology bank -protocol hybrid -roots 500 -clients 16
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	ctx "compositetx"
)

// parseFaults turns "apply=0.02,lock-delay=0.05,down=0.01" into a
// FaultPlan (site names match FaultSite.String; values are per-visit
// probabilities).
func parseFaults(spec string, seed int64) (ctx.FaultPlan, error) {
	plan := ctx.FaultPlan{Seed: seed}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return plan, fmt.Errorf("bad fault spec %q (want site=prob)", kv)
		}
		p, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return plan, fmt.Errorf("bad fault probability %q: %v", v, err)
		}
		switch k {
		case "apply":
			plan.ApplyProb = p
		case "lock-delay":
			plan.LockDelayProb = p
		case "lock-fail":
			plan.LockFailProb = p
		case "compensation":
			plan.CompensationProb = p
		case "down":
			plan.DownProb = p
		default:
			return plan, fmt.Errorf("unknown fault site %q (apply|lock-delay|lock-fail|compensation|down)", k)
		}
	}
	return plan, nil
}

func main() {
	topoName := flag.String("topology", "bank", "stack2|stack3|stack4|bank|diamond")
	topoFile := flag.String("topo-file", "", "load a custom topology from a JSON file (overrides -topology)")
	protoName := flag.String("protocol", "hybrid", "open-nested|closed-nested|global-2pl|hybrid|nocc")
	roots := flag.Int("roots", 500, "number of root transactions")
	steps := flag.Int("steps", 4, "steps per transaction")
	items := flag.Int("items", 6, "hot-item universe size")
	clients := flag.Int("clients", 16, "concurrent client goroutines")
	readRatio := flag.Float64("reads", 0.3, "read service ratio")
	writeRatio := flag.Float64("writes", 0.2, "write service ratio (rest: increments)")
	seed := flag.Int64("seed", 1, "workload seed")
	deadlock := flag.String("deadlock", "wait-die", "deadlock policy: wait-die|detect-wfg")
	faults := flag.String("faults", "", "fault injection, e.g. apply=0.02,lock-delay=0.05,down=0.01")
	faultSeed := flag.Int64("fault-seed", 1, "fault injector seed")
	opTimeout := flag.Duration("op-timeout", 0, "per-attempt deadline (0 = none), e.g. 25ms")
	flag.Parse()

	topos := map[string]*ctx.Topology{
		"stack2":  ctx.StackTopology(2),
		"stack3":  ctx.StackTopology(3),
		"stack4":  ctx.StackTopology(4),
		"bank":    ctx.BankTopology(),
		"diamond": ctx.DiamondTopology(),
	}
	topo, ok := topos[*topoName]
	if *topoFile != "" {
		f, err := os.Open(*topoFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "compsim: %v\n", err)
			os.Exit(2)
		}
		topo, err = ctx.DecodeTopology(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "compsim: %v\n", err)
			os.Exit(2)
		}
		*topoName = *topoFile
	} else if !ok {
		fmt.Fprintf(os.Stderr, "compsim: unknown topology %q\n", *topoName)
		os.Exit(2)
	}
	protos := map[string]ctx.Protocol{
		"open-nested":   ctx.OpenNested,
		"closed-nested": ctx.ClosedNested,
		"global-2pl":    ctx.Global2PL,
		"hybrid":        ctx.Hybrid,
		"nocc":          ctx.NoCC,
	}
	proto, ok := protos[*protoName]
	if !ok {
		fmt.Fprintf(os.Stderr, "compsim: unknown protocol %q\n", *protoName)
		os.Exit(2)
	}

	rt := topo.NewRuntime(proto)
	switch *deadlock {
	case "wait-die":
		rt.Deadlock = ctx.WaitDie
	case "detect-wfg":
		rt.Deadlock = ctx.DetectWFG
	default:
		fmt.Fprintf(os.Stderr, "compsim: unknown deadlock policy %q\n", *deadlock)
		os.Exit(2)
	}
	rt.OpTimeout = *opTimeout
	if *faults != "" {
		plan, err := parseFaults(*faults, *faultSeed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "compsim: %v\n", err)
			os.Exit(2)
		}
		rt.SetFaults(plan)
	}
	programs := ctx.GenPrograms(topo, ctx.WorkloadParams{
		Roots: *roots, StepsPerTx: *steps, Items: *items,
		ReadRatio: *readRatio, WriteRatio: *writeRatio, Seed: *seed,
	})
	start := time.Now()
	if err := ctx.Run(rt, programs, *clients); err != nil {
		fmt.Fprintf(os.Stderr, "compsim: %v\n", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)
	m := rt.Metrics()
	fmt.Printf("topology=%s protocol=%s roots=%d clients=%d\n", *topoName, proto, *roots, *clients)
	fmt.Printf("wall=%s throughput=%.0f tx/s\n", elapsed.Round(time.Millisecond), float64(m.Commits)/elapsed.Seconds())
	fmt.Printf("commits=%d aborts=%d leaf-ops=%d invocations=%d lock-waits=%d\n",
		m.Commits, m.Aborts, m.LeafOps, m.Invokes, m.LockWaits)
	if *faults != "" || *opTimeout > 0 {
		fmt.Printf("faults=%d timeouts=%d sub-retries=%d quarantined=%d\n",
			m.InjectedFaults, m.Timeouts, m.SubRetries, m.CompensationFailures)
		for _, q := range rt.Quarantined() {
			fmt.Printf("quarantine: component=%s txn=%s op=%s err=%v\n", q.Component, q.Txn, q.Op, q.Err)
		}
	}

	sys := rt.RecordedSystem()
	if err := sys.Validate(); err != nil {
		fmt.Printf("recorded execution: MODEL VIOLATION (%v)\n", err)
		os.Exit(1)
	}
	v, err := ctx.Check(sys, ctx.CheckOptions{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "compsim: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("recorded execution: %s\n", v)
	if !v.Correct {
		os.Exit(1)
	}
}
