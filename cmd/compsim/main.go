// Command compsim runs the prototype composite-system runtime on a chosen
// topology and protocol, prints throughput metrics, and checks the
// recorded execution for composite correctness.
//
// Usage:
//
//	compsim -topology bank -protocol hybrid -roots 500 -clients 16
//
// With -wal the runtime journals through a durable write-ahead log; a run
// killed by a crash fault (-crash, or a "crash=p" fault site) exits with
// status 3 and can be recovered — torn tail truncated, in-flight work
// undone, committed work redone and re-verified — with -recover:
//
//	compsim -topology bank -wal /tmp/bank.wal -crash T13:commit
//	compsim -recover /tmp/bank.wal
//
// With -checkpoint-every N the runtime stays bounded over long runs:
// every N commits it folds the certified history, prunes the recorder,
// compacts MVCC version chains and truncates the WAL behind the live
// barrier, so recovery replays only the tail since the last marker:
//
//	compsim -topology bank -roots 5000 -certify -wal /tmp/bank.wal -checkpoint-every 50
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	ctx "compositetx"
)

// stopProfiles finishes -cpuprofile/-memprofile collection; a no-op until
// startProfiles installs the real hook. exit routes every post-profiling
// termination through it (os.Exit skips defers).
var stopProfiles = func() {}

func exit(code int) {
	stopProfiles()
	os.Exit(code)
}

// startProfiles wires the -cpuprofile/-memprofile flags: CPU profiling
// starts now, the heap profile is captured when stopProfiles runs.
func startProfiles(cpu, mem string) {
	var cpuF *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			fmt.Fprintf(os.Stderr, "compsim: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "compsim: %v\n", err)
			os.Exit(2)
		}
		cpuF = f
	}
	stopProfiles = func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintf(os.Stderr, "compsim: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "compsim: %v\n", err)
			}
			f.Close()
		}
	}
}

// parseFaults turns "apply=0.02,lock-delay=0.05,crash=0.01" into a
// FaultPlan (site names match FaultSite.String; values are per-visit
// probabilities).
func parseFaults(spec string, seed int64) (ctx.FaultPlan, error) {
	plan := ctx.FaultPlan{Seed: seed}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return plan, fmt.Errorf("bad fault spec %q (want site=prob)", kv)
		}
		p, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return plan, fmt.Errorf("bad fault probability %q: %v", v, err)
		}
		switch k {
		case "apply":
			plan.ApplyProb = p
		case "lock-delay":
			plan.LockDelayProb = p
		case "lock-fail":
			plan.LockFailProb = p
		case "compensation":
			plan.CompensationProb = p
		case "down":
			plan.DownProb = p
		case "crash":
			plan.CrashProb = p
		default:
			return plan, fmt.Errorf("unknown fault site %q (apply|lock-delay|lock-fail|compensation|down|crash)", k)
		}
	}
	return plan, nil
}

// parseCrash turns a deterministic crash spec into a trigger: a leaf node
// ID ("T13/2/1", transaction inferred from the prefix), or
// "T13:commit" / "T13:post-commit" for the commit-protocol sites.
func parseCrash(spec string) (ctx.Trigger, error) {
	trig := ctx.Trigger{Site: ctx.FaultCrash}
	if txn, site, ok := strings.Cut(spec, ":"); ok {
		if site != "commit" && site != "post-commit" {
			return trig, fmt.Errorf("bad crash site %q (want commit|post-commit)", site)
		}
		trig.Txn, trig.Step = txn, site
		return trig, nil
	}
	txn, _, ok := strings.Cut(spec, "/")
	if !ok {
		return trig, fmt.Errorf("bad crash spec %q (want a leaf node ID like T13/2/1, or T13:commit)", spec)
	}
	trig.Txn, trig.Step = txn, spec
	return trig, nil
}

// runRecover is the -recover mode: rebuild a runtime from a WAL directory
// and report what recovery found.
func runRecover(dir string) {
	rec, err := ctx.Recover(ctx.WALConfig{Dir: dir})
	if rec == nil {
		fmt.Fprintf(os.Stderr, "compsim: %v\n", err)
		exit(2)
	}
	s := rec.Stats
	fmt.Printf("recovered wal=%s segments=%d records=%d torn-bytes=%d\n", dir, s.Segments, s.Records, s.TornBytes)
	fmt.Printf("txns committed=%d aborted=%d in-flight=%d redone=%d undone=%d quarantined=%d\n",
		s.Committed, s.Aborted, s.InFlight, s.Redone, s.Undone, s.Quarantined)
	for _, q := range rec.Runtime.Quarantined() {
		fmt.Printf("quarantine: component=%s txn=%s op=%s err=%v\n", q.Component, q.Txn, q.Op, q.Err)
	}
	fmt.Printf("recovered execution: %s\n", rec.Verdict)
	if err != nil {
		fmt.Fprintf(os.Stderr, "compsim: %v\n", err)
		exit(1)
	}
}

func main() {
	topoName := flag.String("topology", "bank", "stack2|stack3|stack4|bank|diamond")
	topoFile := flag.String("topo-file", "", "load a custom topology from a JSON file (overrides -topology)")
	protoName := flag.String("protocol", "hybrid", "open-nested|closed-nested|global-2pl|hybrid|nocc")
	roots := flag.Int("roots", 500, "number of root transactions")
	steps := flag.Int("steps", 4, "steps per transaction")
	items := flag.Int("items", 6, "hot-item universe size")
	clients := flag.Int("clients", 16, "concurrent client goroutines")
	readRatio := flag.Float64("reads", 0.3, "read service ratio")
	writeRatio := flag.Float64("writes", 0.2, "write service ratio (rest: increments)")
	seed := flag.Int64("seed", 1, "workload seed")
	deadlock := flag.String("deadlock", "wait-die", "deadlock policy: wait-die|detect-wfg")
	faults := flag.String("faults", "", "fault injection, e.g. apply=0.02,lock-delay=0.05,down=0.01")
	faultSeed := flag.Int64("fault-seed", 1, "fault injector seed")
	opTimeout := flag.Duration("op-timeout", 0, "per-attempt deadline (0 = none), e.g. 25ms")
	walDir := flag.String("wal", "", "journal through a durable write-ahead log in this directory")
	walSync := flag.Int("wal-sync", 1, "fsync every N WAL records (<=1: every record, <0: never)")
	crash := flag.String("crash", "", `deterministic crash trigger: a leaf node ID ("T13/2/1") or "T13:commit"/"T13:post-commit" (requires -wal)`)
	crashTear := flag.Bool("crash-tear", false, "tear the WAL record mid-append when the crash fires")
	recoverDir := flag.String("recover", "", "recover from a WAL directory, report, and exit")
	certify := flag.Bool("certify", false, "certify every commit online against Comp-C and reject violating ones")
	checkpointEvery := flag.Int("checkpoint-every", 0, "checkpoint every N commits: fold certified history, prune the recorder, compact MVCC chains, truncate the WAL (0 = never)")
	optimistic := flag.Bool("optimistic", false, "serve leaf reads from MVCC snapshots and validate them at commit instead of taking semantic read locks")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	startProfiles(*cpuProfile, *memProfile)
	defer stopProfiles()

	if *recoverDir != "" {
		runRecover(*recoverDir)
		stopProfiles()
		return
	}

	topos := map[string]*ctx.Topology{
		"stack2":  ctx.StackTopology(2),
		"stack3":  ctx.StackTopology(3),
		"stack4":  ctx.StackTopology(4),
		"bank":    ctx.BankTopology(),
		"diamond": ctx.DiamondTopology(),
	}
	topo, ok := topos[*topoName]
	if *topoFile != "" {
		f, err := os.Open(*topoFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "compsim: %v\n", err)
			exit(2)
		}
		topo, err = ctx.DecodeTopology(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "compsim: %v\n", err)
			exit(2)
		}
		*topoName = *topoFile
	} else if !ok {
		fmt.Fprintf(os.Stderr, "compsim: unknown topology %q\n", *topoName)
		exit(2)
	}
	protos := map[string]ctx.Protocol{
		"open-nested":   ctx.OpenNested,
		"closed-nested": ctx.ClosedNested,
		"global-2pl":    ctx.Global2PL,
		"hybrid":        ctx.Hybrid,
		"nocc":          ctx.NoCC,
	}
	proto, ok := protos[*protoName]
	if !ok {
		fmt.Fprintf(os.Stderr, "compsim: unknown protocol %q\n", *protoName)
		exit(2)
	}

	rt := topo.NewRuntime(proto)
	switch *deadlock {
	case "wait-die":
		rt.Deadlock = ctx.WaitDie
	case "detect-wfg":
		rt.Deadlock = ctx.DetectWFG
	default:
		fmt.Fprintf(os.Stderr, "compsim: unknown deadlock policy %q\n", *deadlock)
		exit(2)
	}
	rt.OpTimeout = *opTimeout
	if *optimistic {
		rt.Exec = ctx.ExecOptimistic
	}
	if *certify {
		if err := rt.EnableCertify(); err != nil {
			fmt.Fprintf(os.Stderr, "compsim: %v\n", err)
			exit(2)
		}
	}
	if *walDir != "" {
		if err := rt.EnableWAL(ctx.WALConfig{Dir: *walDir, SyncEvery: *walSync}); err != nil {
			fmt.Fprintf(os.Stderr, "compsim: %v\n", err)
			exit(2)
		}
	}
	if *checkpointEvery > 0 {
		rt.EnableCheckpoints(ctx.CheckpointConfig{Every: *checkpointEvery})
	}
	plan, err := parseFaults(*faults, *faultSeed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "compsim: %v\n", err)
		exit(2)
	}
	if *crash != "" {
		trig, err := parseCrash(*crash)
		if err != nil {
			fmt.Fprintf(os.Stderr, "compsim: %v\n", err)
			exit(2)
		}
		plan.Triggers = append(plan.Triggers, trig)
	}
	plan.CrashTear = *crashTear
	if (*crash != "" || plan.CrashProb > 0) && *walDir == "" {
		fmt.Fprintln(os.Stderr, "compsim: crash faults need -wal (nothing would survive to recover)")
		exit(2)
	}
	if *faults != "" || *crash != "" {
		rt.SetFaults(plan)
	}
	programs := ctx.GenPrograms(topo, ctx.WorkloadParams{
		Roots: *roots, StepsPerTx: *steps, Items: *items,
		ReadRatio: *readRatio, WriteRatio: *writeRatio, Seed: *seed,
	})
	start := time.Now()
	runErr := ctx.Run(rt, programs, *clients)
	elapsed := time.Since(start)
	m := rt.Metrics()
	fmt.Printf("topology=%s protocol=%s roots=%d clients=%d\n", *topoName, proto, *roots, *clients)
	if errors.Is(runErr, ctx.ErrCrashed) {
		fmt.Println(m.String())
		fmt.Printf("crashed: runtime killed by a crash fault; the WAL at %s survived\n", *walDir)
		fmt.Printf("recover with: compsim -recover %s\n", *walDir)
		exit(3)
	}
	if errors.Is(runErr, ctx.ErrCertifyViolation) {
		// The certifier did its job: the violating commit was rejected and
		// rolled back, and the committed history below stays Comp-C.
		var cerr *ctx.CertifyError
		if errors.As(runErr, &cerr) {
			fmt.Printf("certify: rejected %s at commit time: %s\n", cerr.Root, cerr.Verdict.Reason)
		} else {
			fmt.Printf("certify: rejected a commit: %v\n", runErr)
		}
		runErr = nil
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "compsim: %v\n", runErr)
		exit(1)
	}
	if *walDir != "" {
		if err := rt.CloseWAL(); err != nil {
			fmt.Fprintf(os.Stderr, "compsim: %v\n", err)
			exit(1)
		}
	}
	fmt.Printf("wall=%s throughput=%.0f tx/s\n", elapsed.Round(time.Millisecond), float64(m.Commits)/elapsed.Seconds())
	fmt.Println(m.String())
	if *faults != "" || *opTimeout > 0 {
		for _, q := range rt.Quarantined() {
			fmt.Printf("quarantine: component=%s txn=%s op=%s err=%v\n", q.Component, q.Txn, q.Op, q.Err)
		}
	}

	sys := rt.RecordedSystem()
	if err := sys.Validate(); err != nil {
		fmt.Printf("recorded execution: MODEL VIOLATION (%v)\n", err)
		exit(1)
	}
	v, err := ctx.Check(sys, ctx.CheckOptions{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "compsim: %v\n", err)
		exit(2)
	}
	fmt.Printf("recorded execution: %s\n", v)
	if !v.Correct {
		exit(1)
	}
}
