// Command compbench regenerates every experiment artifact of the
// reproduction (E1–E9 in DESIGN.md §6 / EXPERIMENTS.md) as text tables.
//
// Usage:
//
//	compbench [-only E4] [-samples n]   (experiments E1..E9)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"compositetx/internal/sim"
)

func main() {
	only := flag.String("only", "", "run a single experiment (E1..E8)")
	samples := flag.Int("samples", 0, "override sample count for statistical experiments")
	flag.Parse()

	run := map[string]func() *sim.Table{
		"E1": sim.E1Figure3,
		"E2": sim.E2Figure4,
		"E3": func() *sim.Table { return sim.E3Theorems(pick(*samples, 150)) },
		"E4": func() *sim.Table { return sim.E4Containment(pick(*samples, 400)) },
		"E5": func() *sim.Table { return sim.E5Commutativity(pick(*samples, 300)) },
		"E6": func() *sim.Table { return sim.E6Protocols(sim.DefaultRunConfig()) },
		"E7": sim.E7CheckerScaling,
		"E8": func() *sim.Table { return sim.E8Coverage(pick(*samples, 12)) },
		"E9": func() *sim.Table { return sim.E9Deadlock(sim.DefaultRunConfig()) },
	}
	if *only != "" {
		fn, ok := run[strings.ToUpper(*only)]
		if !ok {
			fmt.Fprintf(os.Stderr, "compbench: unknown experiment %q\n", *only)
			os.Exit(2)
		}
		fn().Render(os.Stdout)
		return
	}
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9"} {
		run[id]().Render(os.Stdout)
	}
}

func pick(override, def int) int {
	if override > 0 {
		return override
	}
	return def
}
