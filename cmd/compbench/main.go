// Command compbench regenerates every experiment artifact of the
// reproduction (E1–E17 in DESIGN.md §7 / EXPERIMENTS.md) as text tables.
//
// Usage:
//
//	compbench [-only E4] [-samples n] [-json out.json]
//
// -only accepts a comma-separated list (e.g. -only E1,E2,E7). With -json,
// the selected tables plus the checker, incremental-certification, WAL,
// MVCC and distributed-commit microbenchmarks (ns/op for the E1/E2
// units, the E7 scaling configurations, CheckBatch throughput at 1 vs 8
// workers, the E12 incremental-vs-full per-commit cost, WAL append under
// each group-commit setting, full crash recovery, the E13 MVCC-vs-lock
// curve cells, the E14 bounded-memory checkpoint soak, end-to-end
// 2PC latency per transport for E15, and the E16 sustained distributed
// throughput cells at 64 concurrent clients, and the E17 certified
// commit throughput cells at 8 clients across the conflict spread) are
// also written to the
// given file; the repository keeps the result as BENCH_checker.json so
// the perf trajectory is machine-readable across PRs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"compositetx/internal/sim"
)

// stopProfiles finishes -cpuprofile/-memprofile collection; a no-op until
// startProfiles installs the real hook. exit routes every post-profiling
// termination through it (os.Exit skips defers).
var stopProfiles = func() {}

func exit(code int) {
	stopProfiles()
	os.Exit(code)
}

// startProfiles wires the -cpuprofile/-memprofile flags: CPU profiling
// starts now, the heap profile is captured when stopProfiles runs.
func startProfiles(cpu, mem string) {
	var cpuF *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			fmt.Fprintf(os.Stderr, "compbench: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "compbench: %v\n", err)
			os.Exit(2)
		}
		cpuF = f
	}
	stopProfiles = func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintf(os.Stderr, "compbench: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "compbench: %v\n", err)
			}
			f.Close()
		}
	}
}

// benchDoc is the -json output shape (persisted as BENCH_checker.json).
type benchDoc struct {
	CPUs       int               `json:"cpus"`
	Tables     []*sim.Table      `json:"tables"`
	Benchmarks []sim.BenchResult `json:"benchmarks"`
}

func main() {
	only := flag.String("only", "", "run a subset of experiments, comma-separated (E1..E17)")
	samples := flag.Int("samples", 0, "override sample count for statistical experiments")
	jsonOut := flag.String("json", "", "also write tables + checker benchmarks to this file as JSON")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	startProfiles(*cpuProfile, *memProfile)
	defer stopProfiles()

	run := map[string]func() *sim.Table{
		"E1":  sim.E1Figure3,
		"E2":  sim.E2Figure4,
		"E3":  func() *sim.Table { return sim.E3Theorems(pick(*samples, 150)) },
		"E4":  func() *sim.Table { return sim.E4Containment(pick(*samples, 400)) },
		"E5":  func() *sim.Table { return sim.E5Commutativity(pick(*samples, 300)) },
		"E6":  func() *sim.Table { return sim.E6Protocols(sim.DefaultRunConfig()) },
		"E7":  sim.E7CheckerScaling,
		"E8":  func() *sim.Table { return sim.E8Coverage(pick(*samples, 12)) },
		"E9":  func() *sim.Table { return sim.E9Deadlock(sim.DefaultRunConfig()) },
		"E10": func() *sim.Table { return sim.E10Chaos(sim.DefaultChaosConfig()) },
		"E11": func() *sim.Table { return sim.E11CrashMatrix(sim.DefaultCrashConfig()) },
		"E12": func() *sim.Table { return sim.E12Incremental(sim.DefaultRunConfig()) },
		"E13": func() *sim.Table { return sim.E13MVCC(sim.DefaultMVCCConfig()) },
		"E14": func() *sim.Table { return sim.E14Checkpoint(sim.DefaultCheckpointConfig()) },
		"E15": func() *sim.Table { return sim.E15NetChaos(sim.DefaultNetChaosConfig()) },
		"E16": func() *sim.Table { return sim.E16DistThroughput(sim.DefaultDistPerfConfig()) },
		"E17": func() *sim.Table { return sim.E17CertThroughput(sim.DefaultCertPerfConfig()) },
	}
	ids := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17"}
	if *only != "" {
		ids = nil
		for _, id := range strings.Split(*only, ",") {
			id = strings.ToUpper(strings.TrimSpace(id))
			if id == "" {
				continue
			}
			if _, ok := run[id]; !ok {
				fmt.Fprintf(os.Stderr, "compbench: unknown experiment %q\n", id)
				exit(2)
			}
			ids = append(ids, id)
		}
	}

	var tables []*sim.Table
	for _, id := range ids {
		t := run[id]()
		t.Render(os.Stdout)
		tables = append(tables, t)
	}

	if *jsonOut != "" {
		fmt.Fprintln(os.Stderr, "compbench: running checker benchmarks...")
		doc := benchDoc{
			CPUs:       runtime.NumCPU(),
			Tables:     tables,
			Benchmarks: append(append(append(append(append(append(append(sim.CheckerBenchmarks(), sim.IncrementalBenchmarks()...), sim.WALBenchmarks()...), sim.MVCCBenchmarks()...), sim.CheckpointBenchmarks()...), sim.DistBenchmarks()...), sim.DistPerfBenchmarks()...), sim.CertPerfBenchmarks()...),
		}
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "compbench: %v\n", err)
			exit(2)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintf(os.Stderr, "compbench: %v\n", err)
			exit(2)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "compbench: %v\n", err)
			exit(2)
		}
	}
}

func pick(override, def int) int {
	if override > 0 {
		return override
	}
	return def
}
