// Command compcheck decides composite correctness (Comp-C) of a recorded
// composite execution.
//
// Usage:
//
//	compcheck [-trace] [-example name] [-parallel n] [file.json ...]
//
// The input is a JSON system (see model's codec; produce one with
// (*System).Encode or by hand). With no file, stdin is read. The built-in
// paper examples are available via -example figure1|figure2|figure3|figure4.
//
// With several files (or -parallel > 1), the systems are checked as one
// CheckBatch on a worker pool of the given size (-parallel 0 = one worker
// per CPU) and one verdict line is printed per file.
//
// Exit status: 0 correct, 1 incorrect, 2 invalid input. With several
// files, the worst status across all inputs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	ctx "compositetx"
)

func main() {
	trace := flag.Bool("trace", false, "print the full reduction trace")
	jsonOut := flag.Bool("json", false, "print the verdict as JSON")
	dot := flag.Bool("dot", false, "print the system as Graphviz DOT instead of checking")
	analyze := flag.Bool("analyze", false, "run every applicable criterion, not just Comp-C")
	example := flag.String("example", "", "check a built-in paper example (figure1..figure4)")
	parallel := flag.Int("parallel", 1, "batch worker-pool size for multiple files (0 = one per CPU)")
	flag.Parse()

	if len(flag.Args()) > 1 || (*parallel != 1 && len(flag.Args()) > 0) {
		os.Exit(runBatch(flag.Args(), *parallel, *trace, *jsonOut))
	}

	sys, err := load(*example, flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "compcheck: %v\n", err)
		os.Exit(2)
	}
	if *dot {
		if err := sys.DOT(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "compcheck: %v\n", err)
			os.Exit(2)
		}
		return
	}
	if err := sys.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "compcheck: invalid composite system:\n%v\n", err)
		os.Exit(2)
	}
	if *analyze {
		rep, err := ctx.Classify(sys, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "compcheck: %v\n", err)
			os.Exit(2)
		}
		fmt.Print(rep)
		if !rep.CompC {
			os.Exit(1)
		}
		return
	}
	v, err := ctx.Check(sys, ctx.CheckOptions{KeepFronts: *trace})
	if err != nil {
		fmt.Fprintf(os.Stderr, "compcheck: %v\n", err)
		os.Exit(2)
	}
	switch {
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(v); err != nil {
			fmt.Fprintf(os.Stderr, "compcheck: %v\n", err)
			os.Exit(2)
		}
	case *trace:
		fmt.Print(v.Trace())
	default:
		fmt.Println(v)
	}
	if !v.Correct {
		os.Exit(1)
	}
}

// runBatch checks every file as one CheckBatch and prints a verdict line
// per input; it returns the worst exit status seen.
func runBatch(paths []string, parallelism int, trace, jsonOut bool) int {
	systems := make([]*ctx.System, len(paths))
	status := 0
	for i, path := range paths {
		sys, err := loadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "compcheck: %s: %v\n", path, err)
			status = 2
			continue // leaves a nil slot: CheckBatch reports it, we skip it
		}
		if err := sys.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "compcheck: %s: invalid composite system:\n%v\n", path, err)
			status = 2
			continue
		}
		systems[i] = sys
	}
	results := ctx.CheckBatch(systems, parallelism, ctx.CheckOptions{KeepFronts: trace})
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	for i, r := range results {
		if systems[i] == nil {
			continue // load error already reported
		}
		switch {
		case r.Err != nil:
			fmt.Fprintf(os.Stderr, "compcheck: %s: %v\n", paths[i], r.Err)
			status = 2
			continue
		case jsonOut:
			fmt.Printf("%s:\n", paths[i])
			if err := enc.Encode(r.Verdict); err != nil {
				fmt.Fprintf(os.Stderr, "compcheck: %v\n", err)
				return 2
			}
		case trace:
			fmt.Printf("%s:\n%s", paths[i], r.Verdict.Trace())
		default:
			fmt.Printf("%s: %v\n", paths[i], r.Verdict)
		}
		if !r.Verdict.Correct && status == 0 {
			status = 1
		}
	}
	return status
}

func load(example, path string) (*ctx.System, error) {
	switch example {
	case "figure1":
		return ctx.Figure1System(), nil
	case "figure2":
		return ctx.Figure2System(), nil
	case "figure3":
		return ctx.Figure3System(), nil
	case "figure4":
		return ctx.Figure4System(), nil
	case "":
	default:
		return nil, fmt.Errorf("unknown example %q", example)
	}
	in := os.Stdin
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		in = f
	}
	return ctx.DecodeSystem(in)
}

func loadFile(path string) (*ctx.System, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ctx.DecodeSystem(f)
}
