// Command compcheck decides composite correctness (Comp-C) of a recorded
// composite execution.
//
// Usage:
//
//	compcheck [-trace] [-example name] [file.json]
//
// The input is a JSON system (see model's codec; produce one with
// (*System).Encode or by hand). With no file, stdin is read. The built-in
// paper examples are available via -example figure1|figure2|figure3|figure4.
//
// Exit status: 0 correct, 1 incorrect, 2 invalid input.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	ctx "compositetx"
)

func main() {
	trace := flag.Bool("trace", false, "print the full reduction trace")
	jsonOut := flag.Bool("json", false, "print the verdict as JSON")
	dot := flag.Bool("dot", false, "print the system as Graphviz DOT instead of checking")
	analyze := flag.Bool("analyze", false, "run every applicable criterion, not just Comp-C")
	example := flag.String("example", "", "check a built-in paper example (figure1..figure4)")
	flag.Parse()

	sys, err := load(*example, flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "compcheck: %v\n", err)
		os.Exit(2)
	}
	if *dot {
		if err := sys.DOT(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "compcheck: %v\n", err)
			os.Exit(2)
		}
		return
	}
	if err := sys.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "compcheck: invalid composite system:\n%v\n", err)
		os.Exit(2)
	}
	if *analyze {
		rep, err := ctx.Classify(sys, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "compcheck: %v\n", err)
			os.Exit(2)
		}
		fmt.Print(rep)
		if !rep.CompC {
			os.Exit(1)
		}
		return
	}
	v, err := ctx.Check(sys, ctx.CheckOptions{KeepFronts: *trace})
	if err != nil {
		fmt.Fprintf(os.Stderr, "compcheck: %v\n", err)
		os.Exit(2)
	}
	switch {
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(v); err != nil {
			fmt.Fprintf(os.Stderr, "compcheck: %v\n", err)
			os.Exit(2)
		}
	case *trace:
		fmt.Print(v.Trace())
	default:
		fmt.Println(v)
	}
	if !v.Correct {
		os.Exit(1)
	}
}

func load(example, path string) (*ctx.System, error) {
	switch example {
	case "figure1":
		return ctx.Figure1System(), nil
	case "figure2":
		return ctx.Figure2System(), nil
	case "figure3":
		return ctx.Figure3System(), nil
	case "figure4":
		return ctx.Figure4System(), nil
	case "":
	default:
		return nil, fmt.Errorf("unknown example %q", example)
	}
	in := os.Stdin
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		in = f
	}
	return ctx.DecodeSystem(in)
}
