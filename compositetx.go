// Package compositetx is a library for reasoning about — and running —
// composite transactional systems, reproducing "Correctness in General
// Configurations of Transactional Components" (Alonso, Feßler, Pardon,
// Schek; PODS 1999).
//
// A composite system is a set of independent transactional schedulers
// (components) that invoke each other's services in an arbitrary acyclic
// configuration: each component has its own transactions, its own conflict
// declarations, and its own scheduling decisions, and an operation of one
// component may itself be a transaction of another. The package provides:
//
//   - the execution model (Definitions 1–9): systems, schedules, weak and
//     strong orders, invocation graphs — build with NewSystem, validate
//     with (*System).Validate;
//   - the correctness criterion Comp-C (Definitions 10–20, Theorem 1):
//     Check runs the level-by-level reduction over computational fronts
//     and returns a verdict with a human-readable trace;
//   - the special-case criteria the paper relates Comp-C to: conflict
//     consistency per schedule, SCC for stacks, FCC for forks, JCC for
//     joins (with the ghost graph), and the classical baselines LLSR and
//     OPSR;
//   - a runnable prototype composite system (the paper's announced
//     implementation): goroutine components with semantic lock managers,
//     four concurrency-control protocols, execution recording, and a
//     bridge back into the checker;
//   - workload generators for random stack/fork/join/general executions
//     and flat read/write histories.
//
// The worked examples of the paper are available as Figure1System through
// Figure4System. See DESIGN.md for the reproduction inventory and
// EXPERIMENTS.md for the regenerated results.
package compositetx

import (
	"io"

	"compositetx/internal/criteria"
	"compositetx/internal/front"
	"compositetx/internal/model"
	"compositetx/internal/order"
)

// Core model types (Definitions 1–9).
type (
	// System is a composite system: schedules plus the computational
	// forest of a recorded execution.
	System = model.System
	// Schedule is one scheduler component's recorded behaviour.
	Schedule = model.Schedule
	// Node is a forest node: root transaction, subtransaction, or leaf.
	Node = model.Node
	// NodeID identifies a forest node.
	NodeID = model.NodeID
	// ScheduleID identifies a schedule.
	ScheduleID = model.ScheduleID
	// Relation is a binary order relation over node IDs.
	Relation = order.Relation[model.NodeID]
	// PairSet is a symmetric conflict predicate.
	PairSet = model.PairSet
)

// Checker types (Definitions 10–20).
type (
	// Verdict is the result of a Comp-C check, including the reduction
	// trace and, for correct executions, a serial witness over the roots.
	Verdict = front.Verdict
	// CheckOptions configures Check.
	CheckOptions = front.Options
	// Front is a computational front (advanced use: stepwise reduction).
	Front = front.Front
	// Sequences records temporal operation sequences per schedule, the
	// extra information the OPSR baseline needs.
	Sequences = criteria.Sequences

	// Incremental is the online Comp-C engine: feed it execution deltas
	// with Append and it re-decides correctness touching only the
	// affected reduction state (the runtime's live certification is built
	// on it).
	Incremental = front.Incremental
	// IncrementalOptions configures NewIncremental.
	IncrementalOptions = front.IncrementalOptions
	// Delta is an execution increment: new schedules, nodes, conflict
	// pairs and order edges to append to a system under check.
	Delta = front.Delta
	// DeltaNode declares one forest node inside a Delta.
	DeltaNode = front.DeltaNode
	// DeltaPair declares one node pair (conflict or order edge) inside a
	// Delta.
	DeltaPair = front.DeltaPair
)

// NewSystem returns an empty composite system. Add schedules with
// AddSchedule, transactions with AddRoot/AddTx, leaf operations with
// AddLeaf, then record conflicts and orders on the schedules.
func NewSystem() *System { return model.NewSystem() }

// NewRelation returns an empty order relation (for intra-transaction
// orders).
func NewRelation() *Relation { return order.New[model.NodeID]() }

// DecodeSystem reads a system from its JSON representation.
func DecodeSystem(r io.Reader) (*System, error) { return model.Decode(r) }

// Check decides composite correctness (Comp-C, Theorem 1) of a recorded
// execution by level-by-level reduction. It returns an error only for
// malformed systems (broken forest structure or a recursive
// configuration); a well-formed but incorrect execution yields a verdict
// with Correct == false and a diagnosis.
func Check(sys *System, opts CheckOptions) (*Verdict, error) {
	return front.Check(sys, opts)
}

// IsCompC is Check reduced to its boolean verdict.
func IsCompC(sys *System) (bool, error) { return front.IsCompC(sys) }

// BatchResult pairs one system's Comp-C verdict with its per-system error;
// CheckBatch returns one per input, in input order.
type BatchResult = front.BatchResult

// CheckBatch checks many recorded executions concurrently on a worker pool
// of the given size (parallelism < 1 means one worker per CPU). Input
// systems may alias each other; shared systems are interned once up front
// so the fan-out phase never mutates them. A nil system yields an error
// result in its slot without affecting the others.
func CheckBatch(systems []*System, parallelism int, opts CheckOptions) []BatchResult {
	return front.CheckBatch(systems, parallelism, opts)
}

// NewIncremental returns an empty online Comp-C engine. Feed it Deltas
// with Append; every call returns the verdict for the execution
// accumulated so far, recomputing only the reduction state the delta
// touches.
func NewIncremental(opts IncrementalOptions) *Incremental { return front.NewIncremental(opts) }

// SystemDelta converts a whole system into one Delta (appendable onto an
// empty engine).
func SystemDelta(sys *System) *Delta { return front.SystemDelta(sys) }

// DecomposeByRoot splits a system into one Delta per root transaction —
// the commit-sized increments the runtime's certifier feeds the engine.
func DecomposeByRoot(sys *System) []*Delta { return front.DecomposeByRoot(sys) }

// DecomposeSteps splits a system into fine-grained Deltas (one node
// each, parents first), the op-by-op stream used by the prefix-exactness
// property tests.
func DecomposeSteps(sys *System) []*Delta { return front.DecomposeSteps(sys) }

// IsCC reports conflict consistency of a single schedule: it serialized
// its transactions compatibly with its weak input orders.
func IsCC(sys *System, sched ScheduleID) bool {
	sc := sys.Schedule(sched)
	if sc == nil {
		return false
	}
	return criteria.IsCC(sys, sc)
}

// IsSCC reports stack conflict consistency (Definition 22); by Theorem 2
// it coincides with Comp-C on stack configurations.
func IsSCC(sys *System) (bool, error) { return criteria.IsSCC(sys) }

// IsFCC reports fork conflict consistency (Definition 24); by Theorem 3 it
// coincides with Comp-C on fork configurations.
func IsFCC(sys *System) (bool, error) { return criteria.IsFCC(sys) }

// IsJCC reports join conflict consistency (Definition 27, via the ghost
// graph); by Theorem 4 it coincides with Comp-C on join configurations.
func IsJCC(sys *System) (bool, error) { return criteria.IsJCC(sys) }

// IsLLSR reports level-by-level serializability of a stack execution — the
// pessimistic multilevel baseline the paper's introduction criticizes;
// strictly contained in SCC.
func IsLLSR(sys *System) (bool, error) { return criteria.IsLLSR(sys) }

// IsOPSR reports order-preserving serializability of a stack execution
// given the temporal operation sequences; strictly contained in SCC.
func IsOPSR(sys *System, seqs Sequences) (bool, error) { return criteria.IsOPSR(sys, seqs) }

// Report is the one-stop analysis produced by Classify.
type Report = criteria.Report

// Classify runs every applicable correctness criterion on the execution
// and reports the configuration shape, per-schedule conflict consistency,
// and each criterion's verdict. seqs may be nil (OPSR is then omitted).
func Classify(sys *System, seqs Sequences) (*Report, error) {
	return criteria.Classify(sys, seqs)
}

// Paper examples.

// Figure1System is a general configuration in the spirit of the paper's
// Figure 1 (correct).
func Figure1System() *System { return front.Figure1System() }

// Figure2System illustrates conflicts and observed order (paper Figure 2).
func Figure2System() *System { return front.Figure2System() }

// Figure3System is the paper's incorrect execution (§3.6): reduction fails
// to isolate T1.
func Figure3System() *System { return front.Figure3System() }

// Figure4System is the paper's correct execution (§3.7): orders forgotten
// at the common schedule.
func Figure4System() *System { return front.Figure4System() }
