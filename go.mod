module compositetx

go 1.22
