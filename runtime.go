package compositetx

import (
	"io"

	"compositetx/internal/comm"
	"compositetx/internal/data"
	"compositetx/internal/sched"
	"compositetx/internal/workload"
)

// Runtime façade: the prototype composite system (internal/sched).
type (
	// Runtime is a running composite system: components with semantic
	// lock managers connected per a topology, exercised by concurrent
	// Submit calls, recording its execution for the checker.
	Runtime = sched.Runtime
	// Topology declares components, invocation edges and entry points.
	Topology = sched.Topology
	// ComponentSpec declares one component.
	ComponentSpec = sched.ComponentSpec
	// Protocol selects the concurrency-control discipline.
	Protocol = sched.Protocol
	// Invocation is a tree-shaped transaction program.
	Invocation = sched.Invocation
	// Step is one program step: leaf operation or child invocation.
	Step = sched.Step
	// TxResult reports a committed transaction.
	TxResult = sched.TxResult
	// Metrics aggregates runtime counters.
	Metrics = sched.Metrics
	// WorkloadParams configures GenPrograms.
	WorkloadParams = sched.WorkloadParams
	// ExecMode selects leaf-read execution (Runtime.Exec): semantic
	// locking (ExecPessimistic) or MVCC snapshot reads validated at
	// commit (ExecOptimistic).
	ExecMode = sched.ExecMode
	// DeadlockPolicy selects deadlock handling (WaitDie or DetectWFG);
	// set Runtime.Deadlock before submitting transactions.
	DeadlockPolicy = sched.DeadlockPolicy

	// FaultPlan configures deterministic, seeded fault injection on a
	// runtime (Runtime.SetFaults): per-site probabilities and exact
	// (txn, step) triggers. See FaultApply..FaultDown for the sites.
	FaultPlan = sched.FaultPlan
	// Trigger fires a fault deterministically at an exact (txn, step).
	Trigger = sched.Trigger
	// FaultSite names one of the five injection points.
	FaultSite = sched.FaultSite
	// Quarantine reports an operation whose compensation failed
	// permanently (Runtime.Quarantined).
	Quarantine = sched.Quarantine

	// WALConfig configures the durable write-ahead log
	// (Runtime.EnableWAL and Recover): directory, group-commit
	// interval, segment size.
	WALConfig = sched.WALConfig
	// Recovered is the result of a crash recovery: rebuilt runtime,
	// recovered committed execution, its Comp-C verdict, and stats.
	Recovered = sched.Recovered
	// RecoveryStats summarizes one recovery pass.
	RecoveryStats = sched.RecoveryStats

	// CertifyError is the commit-time rejection of live certification
	// (Runtime.EnableCertify): it names the rejected root and carries the
	// Comp-C violation witness. Matches ErrCertifyViolation with
	// errors.Is.
	CertifyError = sched.CertifyError
	// CertifyOptions tunes the certification pipeline (Runtime.CertOpts):
	// the serial pre-pipeline baseline and the footprint-disjointness
	// fast-path toggle.
	CertifyOptions = sched.CertifyOptions

	// CheckpointConfig installs the bounded-memory checkpoint cadence and
	// overload watermarks (Runtime.EnableCheckpoints): every N commits the
	// runtime folds the certified history, prunes the recorder, compacts
	// MVCC chains and truncates the WAL behind the snapshot barrier.
	CheckpointConfig = sched.CheckpointConfig
	// CheckpointStats reports one checkpoint: marker LSN, folded roots and
	// nodes, WAL segments deleted, MVCC versions dropped.
	CheckpointStats = sched.CheckpointStats

	// DistConfig configures a distributed cluster (StartCluster): one
	// root coordinator plus one participant scheduler per component,
	// wired over a pluggable message transport ("chan" in-process or
	// "tcp" loopback), optionally perturbed by NetFaults and made
	// durable under WALRoot.
	DistConfig = sched.DistConfig
	// Cluster is a running distributed composite driving presumed-abort
	// 2PC for every root transaction; crash and recover either side
	// through its methods, Settle to drain the in-doubt set, Audit to
	// re-verify the committed history against Comp-C.
	Cluster = sched.Cluster
	// DistCrash arms one distributed crash-site injection
	// (Cluster.SetCrash); see DistCrashCoordPre..DistCrashPartDecide.
	DistCrash = sched.DistCrash
	// DistMetrics is a cluster-wide counter snapshot.
	DistMetrics = sched.DistMetrics
	// NetFaultPlan configures the seeded network fault injector: drop,
	// duplicate, delay, reorder and one-way partitions per message.
	NetFaultPlan = comm.NetFaultPlan
	// NetStats counts fault-injector decisions.
	NetStats = comm.NetStats

	// Op is a data-store operation; Mode its semantic class.
	Op = data.Op
	// Mode names the semantic class of an operation.
	Mode = data.Mode
	// ModeTable is a commutativity (conflict) specification over modes.
	ModeTable = data.ModeTable
	// Store is the in-memory integer store leaf components own.
	Store = data.Store
)

// Concurrency-control protocols (see the sched package documentation for
// the soundness discussion: OpenNested is unsound on join/diamond
// configurations — the paper's Figure 3 phenomenon — which Hybrid fixes).
const (
	OpenNested   = sched.OpenNested
	ClosedNested = sched.ClosedNested
	Global2PL    = sched.Global2PL
	Hybrid       = sched.Hybrid
	NoCC         = sched.NoCC
)

// Fault-injection sites (FaultPlan probabilities and Trigger.Site).
const (
	FaultApply        = sched.FaultApply
	FaultLockDelay    = sched.FaultLockDelay
	FaultLockFail     = sched.FaultLockFail
	FaultCompensation = sched.FaultCompensation
	FaultDown         = sched.FaultDown
	FaultCrash        = sched.FaultCrash
)

// Typed runtime errors: recoverable injected faults, component outages,
// deadline expiries (Invocation.Deadline / Runtime.OpTimeout), retry
// budget exhaustion, and application-initiated aborts.
var (
	ErrInjected       = sched.ErrInjected
	ErrComponentDown  = sched.ErrComponentDown
	ErrTimeout        = sched.ErrTimeout
	ErrTooManyRetries = sched.ErrTooManyRetries
	ErrClientAbort    = sched.ErrClientAbort

	// ErrCrashed is returned by Submit after a crash fault fired: the
	// runtime is dead and the WAL is the only survivor (see Recover).
	ErrCrashed = sched.ErrCrashed
	// ErrWALExists rejects EnableWAL over a non-empty log directory.
	ErrWALExists = sched.ErrWALExists
	// ErrRecoveredViolation flags a recovered execution that fails the
	// Comp-C check (the Recovered value is still returned).
	ErrRecoveredViolation = sched.ErrRecoveredViolation
	// ErrCertifyViolation is returned by Submit when live certification
	// (EnableCertify) rejects the commit: admitting it would make the
	// committed execution violate Comp-C. The transaction is rolled back.
	ErrCertifyViolation = sched.ErrCertifyViolation
	// ErrCertifyAfterWAL rejects EnableCertify on a runtime whose WAL is
	// already attached (the journaled metadata would not record certify
	// mode, so recovery would silently drop certification).
	ErrCertifyAfterWAL = sched.ErrCertifyAfterWAL
	// ErrValidation aborts an optimistic attempt (ExecOptimistic) whose
	// snapshot reads a conflicting commit invalidated; the runtime rolls
	// the attempt back and retries it with a fresh snapshot, so Submit
	// surfaces it only wrapped in ErrTooManyRetries.
	ErrValidation = sched.ErrValidation
	// ErrOverload is returned by Submit while the live-state high
	// watermark (CheckpointConfig) is tripped: the caller should back off
	// and retry once a checkpoint has drained the backlog.
	ErrOverload = sched.ErrOverload
	// ErrInsufficient rejects an escrow reserve that would take a
	// bounded counter below its floor (see EscrowCounterTable).
	ErrInsufficient = data.ErrInsufficient
)

// Recover rebuilds a runtime — stores and recorded execution — from a
// write-ahead log directory: torn tail truncated, committed transactions
// redone, in-flight ones undone (journaled write-ahead, so recovery is
// idempotent), and the result re-verified against Comp-C.
func Recover(cfg WALConfig) (*Recovered, error) { return sched.Recover(cfg) }

// Distributed crash sites (DistCrash.Site): each fires after the
// corresponding WAL force, before the message that would reveal it —
// the exact windows presumed-abort 2PC must survive.
const (
	DistCrashCoordPre    = sched.DistCrashCoordPre
	DistCrashCoordPost   = sched.DistCrashCoordPost
	DistCrashPartPrepare = sched.DistCrashPartPrepare
	DistCrashPartDecide  = sched.DistCrashPartDecide
)

// StartCluster builds and starts a fresh distributed cluster: the
// coordinator, one participant per component of cfg.Topo, and the
// shared transport. Every Submit runs the presumed-abort two-phase
// commit; participants force Prepare records before voting yes and
// Decision records before acking.
func StartCluster(cfg DistConfig) (*Cluster, error) { return sched.StartCluster(cfg) }

// RecoverCluster rebuilds a whole distributed cluster from its
// durability root (DistConfig.WALRoot) in a fresh process: topology and
// protocol come from the coordinator log, participants are rebuilt from
// their own logs with in-doubt transactions re-registered, and the
// termination protocol plus decision re-delivery drain the in-doubt set
// (wait with Cluster.Settle, re-verify with Cluster.Audit).
func RecoverCluster(cfg DistConfig) (*Cluster, error) { return sched.RecoverCluster(cfg) }

// Deadlock-handling policies.
const (
	// WaitDie prevents deadlocks by sacrificing younger requesters.
	WaitDie = sched.WaitDie
	// DetectWFG detects waiting cycles on a global waits-for graph and
	// sacrifices the request that closes one.
	DetectWFG = sched.DetectWFG
)

// Built-in operation modes, plus the escrow-style banking modes (semantic
// classes implemented as increments/reads via Op.Impl).
const (
	ModeRead  = data.ModeRead
	ModeWrite = data.ModeWrite
	ModeIncr  = data.ModeIncr

	ModeDeposit  = data.ModeDeposit
	ModeWithdraw = data.ModeWithdraw
	ModeAudit    = data.ModeAudit

	// Bounded escrow-counter modes: a reserve takes from a counter only
	// if it stays above the bound (ErrInsufficient otherwise), a release
	// gives back. Pair with EscrowCounterTable.
	ModeReserve = data.ModeReserve
	ModeRelease = data.ModeRelease
)

// Execution modes (Runtime.Exec): pessimistic semantic locking (default)
// or MVCC snapshot reads with optimistic validate-at-commit.
const (
	ExecPessimistic = sched.ExecPessimistic
	ExecOptimistic  = sched.ExecOptimistic
)

// SemanticTable is the full-knowledge commutativity specification
// (increments commute); RWTable the classical read/write one.
func SemanticTable() *ModeTable { return data.SemanticTable() }

// RWTable is the no-knowledge conflict table (increments are
// read-modify-writes).
func RWTable() *ModeTable { return data.RWTable() }

// EscrowTable is the escrow banking specification: deposits commute,
// withdrawals conflict with each other, audits conflict with both.
func EscrowTable() *ModeTable { return data.EscrowTable() }

// EscrowCounterTable is the bounded escrow counter specification:
// reserves commute with each other (the store enforces the bound
// atomically at apply time), releases commute with everything but reads.
func EscrowCounterTable() *ModeTable { return data.EscrowCounterTable() }

// NewModeTable returns an empty commutativity specification; declare
// conflicting mode pairs with Declare.
func NewModeTable() *ModeTable { return data.NewModeTable() }

// Reference topologies.

// StackTopology is a linear chain of components (multilevel shape).
func StackTopology(depth int) *Topology { return sched.StackTopology(depth) }

// BankTopology is a bank delegating to two branch components.
func BankTopology() *Topology { return sched.BankTopology() }

// DiamondTopology is a general configuration where two independent entry
// components interfere only through a shared bottom component.
func DiamondTopology() *Topology { return sched.DiamondTopology() }

// GenPrograms generates typed random transaction programs over a topology.
func GenPrograms(t *Topology, p WorkloadParams) []Invocation {
	return sched.GenPrograms(t, p)
}

// Run submits every program on a pool of client goroutines.
func Run(rt *Runtime, programs []Invocation, clients int) error {
	return sched.Run(rt, programs, clients)
}

// DecodeTopology reads a topology from its JSON representation (see
// cmd/compsim -topo-file and testdata/topology_shop.json).
func DecodeTopology(r io.Reader) (*Topology, error) {
	return sched.DecodeTopology(r)
}

// EncodeTopology writes a topology in the format DecodeTopology reads
// (the same representation the WAL persists for recovery).
func EncodeTopology(w io.Writer, t *Topology) error {
	return sched.EncodeTopology(w, t)
}

// Random-execution generators (for checker-side experiments).
type (
	// StackParams configures GenerateStack.
	StackParams = workload.StackParams
	// ForkParams configures GenerateFork.
	ForkParams = workload.ForkParams
	// JoinParams configures GenerateJoin.
	JoinParams = workload.JoinParams
	// GeneralParams configures GenerateGeneral.
	GeneralParams = workload.GeneralParams
	// Execution bundles a generated system with temporal sequences.
	Execution = workload.Execution
)

// GenerateStack generates a random stack execution.
func GenerateStack(p StackParams) *Execution { return workload.Stack(p) }

// GenerateFork generates a random fork execution.
func GenerateFork(p ForkParams) *Execution { return workload.Fork(p) }

// GenerateJoin generates a random join execution.
func GenerateJoin(p JoinParams) *Execution { return workload.Join(p) }

// GenerateGeneral generates a random general-configuration execution.
func GenerateGeneral(p GeneralParams) *Execution { return workload.General(p) }
