// Benchmarks regenerating every experiment of the reproduction (E1–E10 in
// DESIGN.md §7). Each benchmark measures the cost of one experiment unit
// and, where meaningful, reports domain metrics (tx/s, accept rates) via
// b.ReportMetric. cmd/compbench prints the corresponding tables.
package compositetx_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	ctx "compositetx"
	"compositetx/internal/criteria"
	"compositetx/internal/front"
	"compositetx/internal/history"
	"compositetx/internal/sched"
	"compositetx/internal/workload"
)

// BenchmarkE1Figure3 measures deciding the paper's incorrect execution.
func BenchmarkE1Figure3(b *testing.B) {
	sys := ctx.Figure3System()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := ctx.IsCompC(sys)
		if err != nil || ok {
			b.Fatalf("want incorrect, got %v, %v", ok, err)
		}
	}
}

// BenchmarkE2Figure4 measures deciding the paper's correct execution.
func BenchmarkE2Figure4(b *testing.B) {
	sys := ctx.Figure4System()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := ctx.IsCompC(sys)
		if err != nil || !ok {
			b.Fatalf("want correct, got %v, %v", ok, err)
		}
	}
}

// BenchmarkE3Theorems measures one theorem-equivalence sample: generate a
// random stack, fork and join and compare the special-case criterion with
// the general reduction.
func BenchmarkE3Theorems(b *testing.B) {
	for i := 0; i < b.N; i++ {
		seed := int64(i)
		st := workload.Stack(workload.StackParams{Levels: 3, Roots: 2, Fanout: 2, ConflictRate: 0.3, Seed: seed})
		scc, _ := criteria.IsSCC(st.Sys)
		c1, _ := front.IsCompC(st.Sys)
		fk := workload.Fork(workload.ForkParams{Branches: 3, Roots: 2, Fanout: 2, LeavesPerSub: 2, ConflictRate: 0.3, Seed: seed})
		fcc, _ := criteria.IsFCC(fk.Sys)
		c2, _ := front.IsCompC(fk.Sys)
		jn := workload.Join(workload.JoinParams{Tops: 2, RootsPerTop: 2, Fanout: 2, LeavesPerSub: 2, ConflictRate: 0.3, TopConflictRate: 0.2, Seed: seed})
		jcc, _ := criteria.IsJCC(jn.Sys)
		c3, _ := front.IsCompC(jn.Sys)
		if scc != c1 || fcc != c2 || jcc != c3 {
			b.Fatalf("theorem disagreement at seed %d", seed)
		}
	}
}

// BenchmarkE4Containment measures one containment sample (LLSR, OPSR, SCC
// on a random stack) and reports acceptance rates.
func BenchmarkE4Containment(b *testing.B) {
	llsr, opsr, scc := 0, 0, 0
	for i := 0; i < b.N; i++ {
		exec := workload.Stack(workload.StackParams{Levels: 2, Roots: 3, Fanout: 2, ConflictRate: 0.4, Seed: int64(i)})
		if ok, _ := criteria.IsLLSR(exec.Sys); ok {
			llsr++
		}
		if ok, _ := criteria.IsOPSR(exec.Sys, exec.Seqs); ok {
			opsr++
		}
		if ok, _ := criteria.IsSCC(exec.Sys); ok {
			scc++
		}
	}
	b.ReportMetric(100*float64(llsr)/float64(b.N), "llsr-accept-%")
	b.ReportMetric(100*float64(opsr)/float64(b.N), "opsr-accept-%")
	b.ReportMetric(100*float64(scc)/float64(b.N), "scc-accept-%")
}

// BenchmarkE5Commutativity measures one semantic-knowledge sample on a
// flat history with commuting increments.
func BenchmarkE5Commutativity(b *testing.B) {
	csr, sem := 0, 0
	for i := 0; i < b.N; i++ {
		h := history.Random(history.GenParams{Txs: 3, OpsPerTx: 3, Items: 2, IncRatio: 0.8, WriteRatio: 0.1, Seed: int64(i)})
		if h.IsCSR() {
			csr++
		}
		if h.IsSemanticSR() {
			sem++
		}
	}
	b.ReportMetric(100*float64(csr)/float64(b.N), "csr-accept-%")
	b.ReportMetric(100*float64(sem)/float64(b.N), "semantic-accept-%")
}

// BenchmarkE6Protocols measures runtime throughput per protocol on the
// bank topology (120 transactions per iteration, 16 clients, 150µs
// simulated per-step service time).
func BenchmarkE6Protocols(b *testing.B) {
	for _, p := range []sched.Protocol{sched.Global2PL, sched.ClosedNested, sched.OpenNested, sched.Hybrid} {
		b.Run(p.String(), func(b *testing.B) {
			const (
				roots   = 120
				clients = 16
			)
			committed := 0
			start := time.Now()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				topo := sched.BankTopology()
				rt := topo.NewRuntime(p)
				progs := sched.GenPrograms(topo, sched.WorkloadParams{
					Roots: roots, StepsPerTx: 4, Items: 4,
					ReadRatio: 0.25, WriteRatio: 0.05, Seed: int64(i),
				})
				// Per-step service time makes lock hold times visible —
				// that is where semantic commutativity pays off.
				progs = sched.Jitter(progs, 150*time.Microsecond, int64(i))
				if err := sched.Run(rt, progs, clients); err != nil {
					b.Fatal(err)
				}
				committed += roots
			}
			b.StopTimer()
			b.ReportMetric(float64(committed)/time.Since(start).Seconds(), "tx/s")
		})
	}
}

// BenchmarkE7CheckerScaling measures Check against system size.
func BenchmarkE7CheckerScaling(b *testing.B) {
	for _, cfg := range []struct{ levels, roots int }{
		{2, 4}, {3, 4}, {4, 4}, {3, 8}, {3, 16}, {3, 32},
	} {
		exec := workload.Stack(workload.StackParams{
			Levels: cfg.levels, Roots: cfg.roots, Fanout: 2, ConflictRate: 0.05, Seed: 1,
		})
		name := fmt.Sprintf("levels=%d/roots=%d/nodes=%d", cfg.levels, cfg.roots, exec.Sys.NumNodes())
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := front.Check(exec.Sys, front.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCheckBatch measures batch-checking a slab of distinct mid-size
// systems on worker pools of increasing size. Scaling is bounded by the
// CPUs actually available (near-linear to 8 workers on >=8 cores; flat on
// a single-core machine) — compare against the reported cpus metric.
func BenchmarkCheckBatch(b *testing.B) {
	systems := make([]*ctx.System, 64)
	for i := range systems {
		systems[i] = workload.Stack(workload.StackParams{
			Levels: 3, Roots: 8, Fanout: 2, ConflictRate: 0.05, Seed: int64(i + 1),
		}).Sys
		systems[i].Intern()
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportMetric(float64(runtime.NumCPU()), "cpus")
			for i := 0; i < b.N; i++ {
				for _, r := range ctx.CheckBatch(systems, workers, ctx.CheckOptions{}) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
			b.ReportMetric(float64(len(systems))*float64(b.N)/b.Elapsed().Seconds(), "systems/s")
		})
	}
}

// BenchmarkE8Coverage measures one full run-record-check round on the
// diamond topology under the Hybrid protocol.
func BenchmarkE8Coverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		topo := sched.DiamondTopology()
		rt := topo.NewRuntime(sched.Hybrid)
		progs := sched.GenPrograms(topo, sched.WorkloadParams{
			Roots: 40, StepsPerTx: 3, Items: 3,
			ReadRatio: 0.2, WriteRatio: 0.5, Seed: int64(i),
		})
		if err := sched.Run(rt, progs, 8); err != nil {
			b.Fatal(err)
		}
		sys := rt.RecordedSystem()
		if err := sys.Validate(); err != nil {
			b.Fatal(err)
		}
		ok, err := front.IsCompC(sys)
		if err != nil || !ok {
			b.Fatalf("hybrid must stay correct: %v, %v", ok, err)
		}
	}
}

// --- Ablation benches for the design choices DESIGN.md calls out. --------

// BenchmarkAblationConFilter compares the reduction with the commuting-
// pair filter (interpretation D3) against a pessimistic variant that is
// emulated by declaring every same-schedule pair conflicting: Figure 4
// then flips from correct to incorrect, and this bench quantifies the
// checking cost of the extra constraint pairs.
func BenchmarkAblationConFilter(b *testing.B) {
	semantic := ctx.Figure4System()
	pessimistic := ctx.Figure4System()
	top := pessimistic.Schedule("STop")
	ops := pessimistic.Ops("STop")
	for i, a := range ops {
		for _, c := range ops[i+1:] {
			top.AddConflict(a, c)
			top.WeakOut.Add(a, c)
		}
	}
	b.Run("semantic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if ok, _ := ctx.IsCompC(semantic); !ok {
				b.Fatal("semantic variant must be correct")
			}
		}
	})
	b.Run("pessimistic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if ok, _ := ctx.IsCompC(pessimistic); ok {
				b.Fatal("pessimistic variant must be incorrect")
			}
		}
	})
}

// BenchmarkAblationWaitDie measures raw lock-manager throughput under
// contention (the scheduler substrate in isolation).
func BenchmarkAblationWaitDie(b *testing.B) {
	topo := sched.StackTopology(2)
	rt := topo.NewRuntime(sched.ClosedNested)
	progs := sched.GenPrograms(topo, sched.WorkloadParams{
		Roots: 1, StepsPerTx: 4, Items: 2, ReadRatio: 0, WriteRatio: 1, Seed: 1,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Submit(fmt.Sprintf("B%d", i), progs[0]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9Deadlock measures one contended run-and-check round per
// deadlock policy (hybrid protocol, write-heavy).
func BenchmarkE9Deadlock(b *testing.B) {
	for _, pol := range []sched.DeadlockPolicy{sched.WaitDie, sched.DetectWFG} {
		b.Run(pol.String(), func(b *testing.B) {
			aborts := int64(0)
			for i := 0; i < b.N; i++ {
				topo := sched.BankTopology()
				rt := topo.NewRuntime(sched.Hybrid)
				rt.Deadlock = pol
				progs := sched.GenPrograms(topo, sched.WorkloadParams{
					Roots: 60, StepsPerTx: 3, Items: 8,
					ReadRatio: 0.2, WriteRatio: 0.3, Seed: int64(i),
				})
				progs = sched.Jitter(progs, 100*time.Microsecond, int64(i))
				if err := sched.Run(rt, progs, 8); err != nil {
					b.Fatal(err)
				}
				aborts += rt.Metrics().Aborts
			}
			b.ReportMetric(float64(aborts)/float64(b.N), "aborts/run")
		})
	}
}

// BenchmarkE10Chaos measures one faulted run-record-check round on the
// bank topology (hybrid protocol, apply + lock-fail + compensation
// faults), reporting the injected-fault rate alongside ns/op.
func BenchmarkE10Chaos(b *testing.B) {
	faults := int64(0)
	for i := 0; i < b.N; i++ {
		topo := sched.BankTopology()
		rt := topo.NewRuntime(sched.Hybrid)
		rt.SetFaults(sched.FaultPlan{
			Seed: int64(i + 1), ApplyProb: 0.04,
			LockFailProb: 0.06, CompensationProb: 0.25,
		})
		progs := sched.GenPrograms(topo, sched.WorkloadParams{
			Roots: 40, StepsPerTx: 3, Items: 3,
			ReadRatio: 0.25, WriteRatio: 0.3, Seed: int64(i),
		})
		if err := sched.Run(rt, progs, 8); err != nil {
			b.Fatal(err)
		}
		faults += rt.Metrics().InjectedFaults
		sys := rt.RecordedSystem()
		v, err := front.Check(sys, front.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if !v.Correct {
			b.Fatalf("chaos run recorded a non-Comp-C execution: %v", v)
		}
	}
	b.ReportMetric(float64(faults)/float64(b.N), "faults/run")
}

// BenchmarkE13MVCC measures runtime throughput per execution mode on the
// E13 shared-pool workload (90% reads, 1ms per-step think time, 16 hot
// items, 8 CPUs as in EXPERIMENTS.md E13): "pessimistic" serializes
// reads through semantic read locks, "optimistic" serves them from MVCC
// snapshots validated at commit, so reads neither queue behind writers
// nor make writers queue behind the reader crowd. The recorded execution
// of every iteration must stay Comp-C (checked off the timer).
func BenchmarkE13MVCC(b *testing.B) {
	for _, mode := range []ctx.ExecMode{ctx.ExecPessimistic, ctx.ExecOptimistic} {
		b.Run(mode.String(), func(b *testing.B) {
			// The harness pins GOMAXPROCS to the -cpu list (default 1)
			// before each sub-benchmark, so the E13 setting must be
			// re-applied here, inside the closure.
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
			const (
				roots   = 240
				clients = 16
				seed    = 11
			)
			committed := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				topo := sched.StackTopology(1)
				rt := topo.NewRuntime(sched.OpenNested)
				rt.Exec = mode
				progs := sched.GenPrograms(topo, sched.WorkloadParams{
					Roots: roots, StepsPerTx: 4, Items: 16,
					ReadRatio: 0.9, WriteRatio: 0.1, Seed: seed,
				})
				progs = sched.Jitter(progs, time.Millisecond, seed)
				if err := sched.Run(rt, progs, clients); err != nil {
					b.Fatal(err)
				}
				committed += roots
				b.StopTimer()
				sys := rt.RecordedSystem()
				if ok, err := front.IsCompC(sys); err != nil || !ok {
					b.Fatalf("run must stay Comp-C: %v, %v", ok, err)
				}
				b.StartTimer()
			}
			b.StopTimer()
			b.ReportMetric(float64(committed)/b.Elapsed().Seconds(), "tx/s")
		})
	}
}
