package compositetx_test

import (
	"os"
	"path/filepath"
	"testing"

	ctx "compositetx"
)

// TestTestdataFiles exercises the on-disk format end to end: the shipped
// JSON files (the paper's figures, also usable with cmd/compcheck) decode,
// validate, and yield the documented verdicts.
func TestTestdataFiles(t *testing.T) {
	want := map[string]bool{
		"figure1.json": true,
		"figure2.json": true,
		"figure3.json": false,
		"figure4.json": true,
	}
	for name, correct := range want {
		t.Run(name, func(t *testing.T) {
			f, err := os.Open(filepath.Join("testdata", name))
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			sys, err := ctx.DecodeSystem(f)
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			ok, err := ctx.IsCompC(sys)
			if err != nil {
				t.Fatal(err)
			}
			if ok != correct {
				t.Fatalf("IsCompC = %v, want %v", ok, correct)
			}
		})
	}
}

// TestTestdataMatchesBuiltins: the shipped files stay in sync with the
// in-code figure constructors.
func TestTestdataMatchesBuiltins(t *testing.T) {
	builtins := map[string]*ctx.System{
		"figure1.json": ctx.Figure1System(),
		"figure2.json": ctx.Figure2System(),
		"figure3.json": ctx.Figure3System(),
		"figure4.json": ctx.Figure4System(),
	}
	for name, sys := range builtins {
		data, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		enc, err := sys.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		// The file is indented; compare decoded forms instead of bytes.
		fromFile := ctx.NewSystem()
		if err := fromFile.UnmarshalJSON(data); err != nil {
			t.Fatal(err)
		}
		reenc, err := fromFile.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if string(enc) != string(reenc) {
			t.Fatalf("%s out of sync with the built-in constructor", name)
		}
	}
}
